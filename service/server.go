package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
)

// errInternal is the opaque body of a 500 after a handler panic; the
// panic itself goes to the log, not to the client.
var errInternal = errors.New("service: internal error")

// Planner is the planning backend a Server serves. *repro.Planner
// implements it; tests substitute gated fakes to make concurrency
// scenarios deterministic.
type Planner interface {
	Plan(ctx context.Context, q *repro.Query, opts ...repro.Option) (*repro.Result, error)
	PlanJSON(ctx context.Context, doc *repro.QueryJSON, opts ...repro.Option) (*repro.Result, error)
	Metrics() repro.PlannerMetrics
}

// Config configures a Server. The zero value is usable: it plans with a
// fresh default repro.Planner, GOMAXPROCS workers, a 64-deep admission
// queue, and a 10s default deadline.
type Config struct {
	// Planner is the planning backend. Nil constructs a default
	// repro.NewPlanner().
	Planner Planner
	// Workers bounds concurrent enumerations. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker; beyond it,
	// requests are rejected with 429. Default 64.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request names
	// none. Default 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps a request's own timeout_ms. Default 60s.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds a request body. Default 4 MiB.
	MaxBodyBytes int64
	// Logger receives the structured records: one "plan" line per
	// planning request (request id, fingerprint, shape, algorithm,
	// duration, outcome), "http" access lines at Debug, "slow plan"
	// warnings, and errors. Nil is silent.
	Logger *slog.Logger
	// HistoryPath, when set, makes the planning-cost history persistent:
	// the file is loaded at startup as the baseline, and baseline + live
	// metrics are saved every HistoryInterval and again at Shutdown. An
	// unreadable or version-mismatched file disables persistence for the
	// process — the file is never overwritten with partial data — and is
	// reported through Logger.
	HistoryPath string
	// HistoryInterval is the periodic history save cadence when
	// HistoryPath is set. Default 5m.
	HistoryInterval time.Duration
	// SlowPlanThreshold, when positive, upgrades the plan log line to a
	// warning (with phase totals when the request was traced) for every
	// planning request at least this slow.
	SlowPlanThreshold time.Duration
	// TraceSample, when positive, attaches an explain trace to one in
	// every TraceSample planning requests that did not ask for one, so
	// /debug/plans carries phase breakdowns even when no client sends
	// explain=1. 0 disables sampling.
	TraceSample int
	// RingSize bounds the /debug/plans ring of slowest plans. Default
	// 32 (obs.DefaultRingSize).
	RingSize int
	// SnapshotPath, when set (and the backend is a *repro.Planner or
	// anything else implementing its snapshot methods), makes the plan
	// cache persistent: the file is restored at startup — so the first
	// request on a warm fingerprint is a cache hit, not an enumeration —
	// and saved every SnapshotInterval and again at Shutdown. A corrupt
	// or version-mismatched file disables snapshot persistence for the
	// process without overwriting the file, and is reported loudly
	// through Logger.
	SnapshotPath string
	// SnapshotInterval is the periodic plan-cache save cadence when
	// SnapshotPath is set. Default 5m.
	SnapshotInterval time.Duration
	// Overload enables the overload degradation ladder (see ladder.go):
	// under pressure the server tightens plan budgets, then forces
	// greedy-only planning, then sheds with 429 — degrading plan
	// quality before availability. Nil disables the ladder; requests
	// are then never rerouted or shed by pressure.
	Overload *OverloadConfig
}

// Server is the concurrent plan-serving subsystem: it owns the worker
// pool, the request coalescer, and the live metrics, and exposes them
// as an http.Handler. Construct with New, serve Handler(), stop with
// Shutdown.
type Server struct {
	cfg     Config
	planner Planner
	pool    *pool
	co      *coalescer
	met     *metrics
	handler http.Handler

	log       *slog.Logger
	planObs   *obs.PlanMetrics // nil when the backend exposes none
	ring      *obs.SlowRing
	reqSeq    atomic.Uint64 //dp:atomic
	sampleSeq atomic.Uint64 //dp:atomic

	histBase  *obs.History // loaded baseline; immutable after New
	histPath  string       // "" disables persistence
	histSaver *periodicSaver

	snap      cacheSnapshotter // nil when unsupported or disabled
	snapPath  string           // "" disables snapshot persistence
	snapSaver *periodicSaver

	ladder *ladder // nil when Config.Overload is nil

	mu       sync.Mutex
	cond     *sync.Cond
	draining bool
	inflight int
}

// New returns a Server over cfg (see Config for defaults).
func New(cfg Config) *Server {
	if cfg.Planner == nil {
		cfg.Planner = repro.NewPlanner()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.HistoryInterval <= 0 {
		cfg.HistoryInterval = 5 * time.Minute
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 5 * time.Minute
	}
	s := &Server{
		cfg:     cfg,
		planner: cfg.Planner,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		co:      newCoalescer(),
		met:     newMetrics(),
		ring:    obs.NewSlowRing(cfg.RingSize),
	}
	s.cond = sync.NewCond(&s.mu)
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if po, ok := cfg.Planner.(planObserver); ok {
		s.planObs = po.PlanObs()
	}
	s.histBase = obs.NewHistory()
	if cfg.HistoryPath != "" {
		base, err := obs.LoadHistory(cfg.HistoryPath)
		if err != nil {
			s.log.Error("planning-cost history unreadable; persistence disabled",
				"path", cfg.HistoryPath, "error", err)
		} else {
			s.histBase = base
			s.histPath = cfg.HistoryPath
			s.histSaver = startSaver(cfg.HistoryInterval, func() {
				if err := s.saveHistory(); err != nil {
					s.log.Warn("periodic history save failed", "path", s.histPath, "error", err)
				}
			})
		}
	}
	// The loaded history doubles as the budget router's cold-start
	// prediction source: a restarted server routes WithPlanBudget calls
	// on yesterday's measured costs instead of the static tables.
	if bs, ok := cfg.Planner.(baselineSetter); ok && s.histBase.Len() > 0 {
		bs.SetBaselineHistory(s.histBase)
	}
	if cfg.SnapshotPath != "" {
		if cs, ok := cfg.Planner.(cacheSnapshotter); ok {
			n, err := cs.LoadCacheSnapshot(cfg.SnapshotPath)
			if err != nil {
				// Strict load contract: never overwrite the evidence.
				// The process runs cold and unpersisted; the operator
				// inspects or deletes the file to re-enable.
				s.log.Error("plan-cache snapshot unreadable; snapshot persistence disabled",
					"path", cfg.SnapshotPath, "error", err)
			} else {
				s.log.Info("plan cache restored from snapshot",
					"path", cfg.SnapshotPath, "entries", n)
				s.snap = cs
				s.snapPath = cfg.SnapshotPath
				s.snapSaver = startSaver(cfg.SnapshotInterval, func() {
					if err := s.saveSnapshot(); err != nil {
						s.log.Warn("periodic snapshot save failed", "path", s.snapPath, "error", err)
					}
				})
			}
		} else {
			s.log.Warn("snapshot path set but backend does not support cache snapshots",
				"path", cfg.SnapshotPath)
		}
	}
	if cfg.Overload != nil {
		s.ladder = newLadder(*cfg.Overload, s.pool, nil)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /plan", s.handlePlan)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/plans", s.handleDebugPlans)
	mux.HandleFunc("GET /debug/history", s.handleDebugHistory)
	s.handler = s.instrument(mux)
	return s
}

// Handler returns the server's HTTP handler (all four endpoints, with
// recovery, accounting, and access logging applied).
func (s *Server) Handler() http.Handler { return s.handler }

// Shutdown drains the server: new planning requests are refused with
// 503 and /healthz reports draining, while requests already admitted
// run to completion (under their own deadlines). It returns nil once
// the last in-flight request finished, or ctx.Err() if ctx expires
// first — in-flight work is then still running; callers that must stop
// it should also cancel the requests' base context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Persist the planning-cost history and plan-cache snapshot last, so
	// the files carry the requests that finished during the drain. Saved
	// even when the drain timed out — the dimensional metrics are
	// cumulative and the cache snapshot is a point-in-time copy, so the
	// saves are merely missing the still-running requests.
	s.histSaver.halt()
	s.snapSaver.halt()
	if serr := s.saveHistory(); serr != nil {
		s.log.Error("history save at shutdown failed", "path", s.histPath, "error", serr)
	}
	if serr := s.saveSnapshot(); serr != nil {
		s.log.Error("snapshot save at shutdown failed", "path", s.snapPath, "error", serr)
	}
	return err
}

// Draining reports whether Shutdown has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// begin admits one planning request into the in-flight set; it fails
// once draining so Shutdown's wait is race-free.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) end() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// timeoutFor resolves a request's effective deadline.
func (s *Server) timeoutFor(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// handlePlan serves POST /plan: decode, coalesce, admit, plan, render.
// The explain=1 query parameter attaches a phase/span trace to the
// planning call and returns it as the response's trace field.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		writeError(w, http.StatusServiceUnavailable, errors.New("service: draining"))
		return
	}
	defer s.end()

	// Overload ladder: evaluate the pressure tier before spending any
	// work on the request. Tier 3 sheds immediately; lower tiers adjust
	// the planning configuration below.
	tier := tierNormal
	if s.ladder != nil {
		tier = s.ladder.current()
		if tier >= tierShed {
			s.ladder.sheds.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("service: shedding under overload"))
			return
		}
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: reading body: %w", err))
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	var req PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
		return
	}
	if err := validateQuery(req.Query); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Tier 1+ tightens the plan budget (imposing one when the request
	// carried none); tier 2 forces greedy-only planning outright. Both
	// rewrites flow into the option key, so degraded requests coalesce
	// — and fill the plan cache — strictly among themselves.
	algorithm := req.Algorithm
	planBudget := time.Duration(req.PlanBudgetMS) * time.Millisecond
	if tier >= tierTighten {
		if db := s.ladder.cfg.DegradedBudget; planBudget <= 0 || planBudget > db {
			planBudget = db
		}
	}
	if tier >= tierGreedy {
		algorithm = "greedy"
	}
	opts, optKey, err := planOptions(algorithm, req.CostModel, req.Budget, planBudget)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Tracing: explicit (explain=1) or sampled (1-in-TraceSample of the
	// remaining requests). Explain requests coalesce in their own
	// population — the key suffix guarantees their leader is traced, so
	// followers inherit a real trace instead of an absent one. Sampled
	// requests keep the plain key: the trace is opportunistic (ring
	// only), and splitting the population would cost extra enumerations.
	ev := r.URL.Query().Get("explain")
	explain := ev == "1" || ev == "true"
	traced := explain
	if !traced && s.cfg.TraceSample > 0 && s.sampleSeq.Add(1)%uint64(s.cfg.TraceSample) == 0 {
		traced = true
	}
	var tr *obs.Trace
	if traced {
		tr = obs.NewTrace()
		opts = append(opts, repro.WithExplain(tr))
	}

	// The coalescing key: planning options plus the canonical graph
	// fingerprint (tree documents hash the document instead — their
	// conflict analysis has no graph to fingerprint before planning).
	var key string
	var leaderPlan func(context.Context) (*repro.Result, error)
	if req.Query.Tree == nil {
		q, err := req.Query.BuildQuery()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		key = optKey + "\x00" + q.Graph().Fingerprint()
		if explain {
			key += "\x00explain"
		}
		leaderPlan = func(ctx context.Context) (*repro.Result, error) {
			return s.planner.Plan(ctx, q, opts...)
		}
	} else {
		// Hash a canonical re-marshal of the query document alone:
		// request-level fields (timeout_ms), field order, and whitespace
		// are plan-irrelevant and must not defeat coalescing.
		canon, err := json.Marshal(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: canonicalizing query: %w", err))
			return
		}
		sum := sha256.Sum256(canon)
		key = optKey + "\x00tree:" + hex.EncodeToString(sum[:])
		if explain {
			key += "\x00explain"
		}
		doc := req.Query
		leaderPlan = func(ctx context.Context) (*repro.Result, error) {
			return s.planner.PlanJSON(ctx, doc, opts...)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()

	// Only the leader takes a worker slot: a thundering herd of one
	// query shape costs one enumeration and one slot, however many
	// requests are waiting on it.
	admitted := func(ctx context.Context) (*repro.Result, error) {
		if err := s.pool.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.pool.release()
		return leaderPlan(ctx)
	}

	start := time.Now()
	var (
		res    *repro.Result
		shared bool
	)
	// A leader that dies of its own context (shorter deadline, vanished
	// client) or a panic must not fail its followers: they re-enter the
	// coalescer, where one of them is elected the next leader and the
	// rest keep waiting — never a herd of direct enumerations. Bounded:
	// each round consumes one dead leader, and healthy outcomes exit.
	for attempt := 0; ; attempt++ {
		res, shared, err = s.co.do(ctx, key, func() (*repro.Result, error) { return admitted(ctx) })
		if err != nil && shared && ctx.Err() == nil && attempt < 8 &&
			(isContextErr(err) || errors.Is(err, errLeaderAborted)) {
			continue
		}
		break
	}
	if err != nil {
		s.log.Info("plan",
			"id", requestID(r.Context()),
			"fingerprint", fingerprintOf(key),
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
			"outcome", "error",
			"error", err.Error())
		s.writePlanError(w, err)
		return
	}
	elapsed := time.Since(start)
	if s.ladder != nil {
		s.ladder.observe(elapsed)
	}
	s.observePlan(requestID(r.Context()), key, res, shared, elapsed)
	resp := planResponse(res, shared, float64(elapsed.Microseconds())/1000)
	resp.PressureTier = tier
	if explain {
		resp.Trace = traceJSON(res.Stats.Trace)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /batch: the batch occupies one worker slot
// and plans sequentially under one deadline. Per-query failures land in
// the matching Results entry; only request-level problems (bad JSON,
// full queue, expired deadline before any work) fail the whole call.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		writeError(w, http.StatusServiceUnavailable, errors.New("service: draining"))
		return
	}
	defer s.end()

	// Batches shed under tier-3 pressure like single requests; the
	// budget-tightening and greedy-forcing tiers do not rewrite batch
	// configuration (a batch already occupies exactly one worker slot,
	// so its marginal pressure is bounded).
	if s.ladder != nil && s.ladder.current() >= tierShed {
		s.ladder.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("service: shedding under overload"))
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: reading body: %w", err))
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("service: body exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("service: batch has no queries"))
		return
	}
	opts, optKey, err := planOptions(req.Algorithm, req.CostModel, req.Budget,
		time.Duration(req.PlanBudgetMS)*time.Millisecond)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()
	if err := s.pool.acquire(ctx); err != nil {
		s.writePlanError(w, err)
		return
	}
	defer s.pool.release()

	out := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	for i, doc := range req.Queries {
		if err := ctx.Err(); err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			continue
		}
		if err := validateQuery(doc); err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			continue
		}
		start := time.Now()
		res, err := s.planner.PlanJSON(ctx, doc, opts...)
		if err != nil {
			out.Results[i] = BatchItem{Error: err.Error()}
			continue
		}
		elapsed := time.Since(start)
		// Batch items flow into the slow-plan ring and plan log like
		// /plan requests; the item key reuses the /plan coalescing form
		// so the same query yields the same fingerprint on both paths.
		itemKey := optKey
		if res.Graph != nil {
			itemKey += "\x00" + res.Graph.Fingerprint()
		}
		s.observePlan(requestID(r.Context()), itemKey, res, false, elapsed)
		out.Results[i] = BatchItem{PlanResponse: planResponse(res, false, float64(elapsed.Microseconds())/1000)}
	}
	writeJSON(w, http.StatusOK, out)
}

// healthzResponse is the body of GET /healthz.
type healthzResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	UptimeS  int64  `json:"uptime_s"`
	Inflight int    `json:"inflight"`
	Queued   int64  `json:"queued"`
	Running  int64  `json:"running"`
	Workers  int    `json:"workers"`
	Plans    uint64 `json:"plans"`
	// PressureTier is the overload ladder's current tier; absent when
	// the ladder is disabled (and at tier 0).
	PressureTier int `json:"pressure_tier,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining, inflight := s.draining, s.inflight
	s.mu.Unlock()
	queued, running := s.pool.gauges()
	resp := healthzResponse{
		Status:   "ok",
		UptimeS:  int64(time.Since(s.met.start).Seconds()),
		Inflight: inflight,
		Queued:   queued,
		Running:  running,
		Workers:  s.pool.workers(),
		Plans:    s.planner.Metrics().Plans,
	}
	if s.ladder != nil {
		resp.PressureTier = s.ladder.current()
	}
	code := http.StatusOK
	if draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# TYPE dpserved_uptime_seconds gauge\n")
	fmt.Fprintf(w, "dpserved_uptime_seconds %g\n", time.Since(s.met.start).Seconds())

	s.met.writeRequests(w)
	s.met.latency.write(w, "dpserved_request_duration_seconds")

	queued, running := s.pool.gauges()
	fmt.Fprintf(w, "# TYPE dpserved_workers gauge\ndpserved_workers %d\n", s.pool.workers())
	fmt.Fprintf(w, "# TYPE dpserved_queue_capacity gauge\ndpserved_queue_capacity %d\n", s.pool.queueCap)
	fmt.Fprintf(w, "# TYPE dpserved_queued_requests gauge\ndpserved_queued_requests %d\n", queued)
	fmt.Fprintf(w, "# TYPE dpserved_running_requests gauge\ndpserved_running_requests %d\n", running)
	fmt.Fprintf(w, "# TYPE dpserved_admission_rejections_total counter\ndpserved_admission_rejections_total %d\n", s.pool.rejections.Load())
	fmt.Fprintf(w, "# TYPE dpserved_request_timeouts_total counter\ndpserved_request_timeouts_total %d\n", s.met.timeouts.Load())
	fmt.Fprintf(w, "# TYPE dpserved_handler_panics_total counter\ndpserved_handler_panics_total %d\n", s.met.panics.Load())

	if s.ladder != nil {
		fmt.Fprintf(w, "# TYPE dpserved_pressure_tier gauge\ndpserved_pressure_tier %d\n", s.ladder.current())
		fmt.Fprintf(w, "# TYPE dpserved_pressure_transitions_total counter\n")
		for t := 0; t < numTiers; t++ {
			fmt.Fprintf(w, "dpserved_pressure_transitions_total{tier=\"%d\"} %d\n", t, s.ladder.transitions[t].Load())
		}
		fmt.Fprintf(w, "# TYPE dpserved_pressure_shed_total counter\ndpserved_pressure_shed_total %d\n", s.ladder.sheds.Load())
	}

	fmt.Fprintf(w, "# TYPE dpserved_coalesce_leaders_total counter\ndpserved_coalesce_leaders_total %d\n", s.co.leaders.Load())
	fmt.Fprintf(w, "# TYPE dpserved_coalesced_requests_total counter\ndpserved_coalesced_requests_total %d\n", s.co.coalesced.Load())
	fmt.Fprintf(w, "# TYPE dpserved_coalesce_waiting gauge\ndpserved_coalesce_waiting %d\n", s.co.waiting.Load())

	pm := s.planner.Metrics()
	fmt.Fprintf(w, "# TYPE planner_plans_total counter\nplanner_plans_total %d\n", pm.Plans)
	fmt.Fprintf(w, "# TYPE planner_cache_hits_total counter\nplanner_cache_hits_total %d\n", pm.CacheHits)
	fmt.Fprintf(w, "# TYPE planner_cache_misses_total counter\nplanner_cache_misses_total %d\n", pm.CacheMisses)
	fmt.Fprintf(w, "# TYPE planner_cache_evictions_total counter\nplanner_cache_evictions_total %d\n", pm.CacheEvictions)
	fmt.Fprintf(w, "# TYPE planner_cache_entries gauge\nplanner_cache_entries %d\n", pm.CacheEntries)
	fmt.Fprintf(w, "# TYPE planner_fallbacks_total counter\nplanner_fallbacks_total %d\n", pm.Fallbacks)
	fmt.Fprintf(w, "# TYPE planner_failures_total counter\nplanner_failures_total %d\n", pm.Failures)
	fmt.Fprintf(w, "# TYPE planner_slo_met_total counter\nplanner_slo_met_total %d\n", pm.SLOMet)
	fmt.Fprintf(w, "# TYPE planner_slo_missed_total counter\nplanner_slo_missed_total %d\n", pm.SLOMissed)
	fmt.Fprintf(w, "# TYPE planner_slo_degraded_total counter\nplanner_slo_degraded_total %d\n", pm.SLODegraded)
	writeMemoMetrics(w, pm.PairsEmitted, pm.ArenaReuses, pm.MemoPeakEntries)
	writeParallelMetrics(w, pm.ParallelRuns, pm.ParallelPairs)
	if len(pm.AutoRouted) > 0 {
		algs := make([]string, 0, len(pm.AutoRouted))
		for alg := range pm.AutoRouted {
			algs = append(algs, alg)
		}
		sort.Strings(algs)
		fmt.Fprintf(w, "# TYPE planner_auto_routed_total counter\n")
		for _, alg := range algs {
			fmt.Fprintf(w, "planner_auto_routed_total{algorithm=%q} %d\n", alg, pm.AutoRouted[alg])
		}
	}
	s.writePlanSeconds(w)
}

// writePlanError maps a planning failure to a status code:
//
//	429 queue full (Retry-After: 1)
//	504 the request's deadline expired (queued or mid-enumeration)
//	499 the client went away (nginx's convention; the response is moot)
//	422 the query was understood but could not be planned
func (s *Server) writePlanError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, err)
	case errors.Is(err, errLeaderAborted):
		// Only reachable when the retry budget ran out on a key whose
		// leaders keep panicking.
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}
