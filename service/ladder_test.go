package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
)

// fakeClock is the ladder's injectable time source: tests advance it
// explicitly, so hysteresis and window expiry are deterministic.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testLadder builds a ladder over a 1-worker pool with queueCap 20 and
// a fake clock, so queue fractions are exact twentieths.
func testLadder(cfg OverloadConfig) (*ladder, *pool, *fakeClock) {
	p := newPool(1, 20)
	clk := newFakeClock()
	return newLadder(cfg, p, clk.now), p, clk
}

// TestLadderQueueEscalation: queue depth alone drives the tier through
// every threshold, escalating instantly.
func TestLadderQueueEscalation(t *testing.T) {
	l, p, _ := testLadder(OverloadConfig{})
	for _, tc := range []struct {
		queued int64
		want   int
	}{
		{0, tierNormal},
		{9, tierNormal},   // 0.45 < 0.50
		{10, tierTighten}, // 0.50
		{14, tierTighten}, // 0.70
		{15, tierGreedy},  // 0.75
		{18, tierGreedy},  // 0.90
		{19, tierShed},    // 0.95
		{20, tierShed},
	} {
		p.queued.Store(tc.queued)
		if got := l.current(); got != tc.want {
			t.Fatalf("queued=%d: tier = %d, want %d", tc.queued, got, tc.want)
		}
	}
	// One entry recorded per tier crossed on the way up.
	for tier, want := range map[int]uint64{tierTighten: 1, tierGreedy: 1, tierShed: 1} {
		if got := l.transitions[tier].Load(); got != want {
			t.Fatalf("transitions[%d] = %d, want %d", tier, got, want)
		}
	}
}

// TestLadderEscalationSkipsTiers: a queue jumping straight to shed
// pressure enters tier 3 directly — escalation never waits on
// intermediate tiers.
func TestLadderEscalationSkipsTiers(t *testing.T) {
	l, p, _ := testLadder(OverloadConfig{})
	p.queued.Store(20)
	if got := l.current(); got != tierShed {
		t.Fatalf("tier = %d, want %d", got, tierShed)
	}
	if got := l.transitions[tierShed].Load(); got != 1 {
		t.Fatalf("transitions[shed] = %d, want 1", got)
	}
	if got := l.transitions[tierTighten].Load() + l.transitions[tierGreedy].Load(); got != 0 {
		t.Fatalf("intermediate tiers recorded %d entries, want 0", got)
	}
}

// TestLadderHysteresis: after pressure vanishes, the tier steps down
// one level per hold period — never instantly, never more than one
// step at a time.
func TestLadderHysteresis(t *testing.T) {
	hold := 5 * time.Second
	l, p, clk := testLadder(OverloadConfig{Hold: hold})

	p.queued.Store(15)
	if got := l.current(); got != tierGreedy {
		t.Fatalf("under pressure: tier = %d, want %d", got, tierGreedy)
	}

	// Pressure gone: the tier holds until a full hold period has
	// elapsed below it.
	p.queued.Store(0)
	if got := l.current(); got != tierGreedy {
		t.Fatalf("immediately after pressure drop: tier = %d, want %d", got, tierGreedy)
	}
	clk.advance(hold - time.Millisecond)
	if got := l.current(); got != tierGreedy {
		t.Fatalf("just before hold expiry: tier = %d, want %d", got, tierGreedy)
	}
	clk.advance(time.Millisecond)
	if got := l.current(); got != tierTighten {
		t.Fatalf("after hold expiry: tier = %d, want %d", got, tierTighten)
	}
	// One step only: the next step needs its own hold period.
	if got := l.current(); got != tierTighten {
		t.Fatalf("right after first step: tier = %d, want %d", got, tierTighten)
	}
	clk.advance(hold)
	if got := l.current(); got != tierNormal {
		t.Fatalf("after second hold: tier = %d, want %d", got, tierNormal)
	}
	// De-escalation entries are recorded too.
	if got := l.transitions[tierTighten].Load(); got != 1 {
		t.Fatalf("transitions[tighten] = %d, want 1 (de-escalation entry)", got)
	}
	if got := l.transitions[tierNormal].Load(); got != 1 {
		t.Fatalf("transitions[normal] = %d, want 1", got)
	}
}

// TestLadderReEscalationResetsHold: pressure returning mid-hold
// refreshes the clock — the ladder must see a full quiet hold period,
// not a net one.
func TestLadderReEscalationResetsHold(t *testing.T) {
	hold := 5 * time.Second
	l, p, clk := testLadder(OverloadConfig{Hold: hold})

	p.queued.Store(10)
	if got := l.current(); got != tierTighten {
		t.Fatalf("tier = %d, want %d", got, tierTighten)
	}
	p.queued.Store(0)
	clk.advance(hold - time.Second)
	// Pressure flickers back at the current tier: lastAbove refreshes.
	p.queued.Store(10)
	l.current()
	p.queued.Store(0)
	clk.advance(hold - time.Second)
	if got := l.current(); got != tierTighten {
		t.Fatalf("hold not yet re-served: tier = %d, want %d", got, tierTighten)
	}
	clk.advance(time.Second)
	if got := l.current(); got != tierNormal {
		t.Fatalf("after full quiet hold: tier = %d, want %d", got, tierNormal)
	}
}

// TestLadderLatencyTiers: the windowed p99 against the target drives
// tiers 1 and 2 — and never tier 3, no matter how slow plans get.
func TestLadderLatencyTiers(t *testing.T) {
	// DefaultBounds put 30ms observations in the (25ms, 50ms] bucket;
	// an all-mass-in-one-bucket p99 interpolates to ≈49.75ms. With a
	// 40ms target that is one threshold (≥ target, < 2×target).
	l, _, clk := testLadder(OverloadConfig{TargetP99: 40 * time.Millisecond})
	for i := 0; i < 100; i++ {
		l.observe(30 * time.Millisecond)
	}
	if got := l.current(); got != tierTighten {
		t.Fatalf("p99 ≈ 1.2×target: tier = %d, want %d", got, tierTighten)
	}

	// Saturate the window with 5s observations: p99 ≫ 2×target, but
	// latency alone must cap at tier 2 — shedding needs a full queue.
	clk.advance(time.Minute) // expire the 30ms mass first
	for i := 0; i < 100; i++ {
		l.observe(5 * time.Second)
	}
	if got := l.current(); got != tierGreedy {
		t.Fatalf("p99 ≫ 2×target: tier = %d, want %d (latency never sheds)", got, tierGreedy)
	}
}

// TestLadderLatencyWindowExpiry: observations age out of the sliding
// window, and with them the pressure they exerted.
func TestLadderLatencyWindowExpiry(t *testing.T) {
	window := 10 * time.Second
	hold := 5 * time.Second
	l, _, clk := testLadder(OverloadConfig{
		TargetP99: 40 * time.Millisecond, Window: window, Hold: hold,
	})
	for i := 0; i < 100; i++ {
		l.observe(5 * time.Second)
	}
	if got := l.current(); got != tierGreedy {
		t.Fatalf("fresh slow mass: tier = %d, want %d", got, tierGreedy)
	}
	// Advance past the window: the mass expires, raw pressure drops to
	// zero, and the hold-gated descent begins.
	clk.advance(window + time.Second)
	if got := l.current(); got != tierTighten {
		t.Fatalf("after window expiry + one hold: tier = %d, want %d", got, tierTighten)
	}
	if _, ok := l.win.p99(clk.now()); ok {
		t.Fatal("window still reports a p99 after full expiry")
	}
	clk.advance(hold)
	if got := l.current(); got != tierNormal {
		t.Fatalf("after second hold: tier = %d, want %d", got, tierNormal)
	}
}

// TestLadderZeroTargetDisablesLatencySignal: without a TargetP99 the
// latency window never contributes pressure.
func TestLadderZeroTargetDisablesLatencySignal(t *testing.T) {
	l, _, _ := testLadder(OverloadConfig{})
	for i := 0; i < 100; i++ {
		l.observe(time.Hour)
	}
	if got := l.current(); got != tierNormal {
		t.Fatalf("tier = %d, want %d (latency signal disabled)", got, tierNormal)
	}
}

// newOverloadServer builds a real-planner server with a 20-deep queue
// and the ladder enabled, returning the server and its test listener.
func newOverloadServer(t *testing.T, cfg *OverloadConfig) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Planner:    repro.NewPlanner(),
		Workers:    2,
		QueueDepth: 20,
		Overload:   cfg,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestServerTierGreedyRewrites: at tier 2 a /plan request is forced to
// greedy regardless of what it asked for, and the response is annotated
// with both the pressure tier and the SLO degradation evidence.
func TestServerTierGreedyRewrites(t *testing.T) {
	s, ts := newOverloadServer(t, &OverloadConfig{DegradedBudget: 50 * time.Millisecond})
	s.pool.queued.Store(15) // 0.75 of 20 → tier 2

	code, body := postPlan(t, ts.Client(), ts.URL, PlanRequest{
		Query: starDoc(8, 1000), Algorithm: "dphyp",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "greedy" {
		t.Fatalf("algorithm = %q, want greedy (tier-2 rewrite)", resp.Algorithm)
	}
	if resp.PressureTier != tierGreedy {
		t.Fatalf("pressure_tier = %d, want %d", resp.PressureTier, tierGreedy)
	}
	if resp.Stats.PlanBudgetMS != 50 {
		t.Fatalf("plan_budget_ms = %g, want 50 (imposed degraded budget)", resp.Stats.PlanBudgetMS)
	}
}

// TestServerTierTightenCapsBudget: at tier 1 a request's own generous
// budget is capped at the degraded budget, while a tighter one is kept.
func TestServerTierTightenCapsBudget(t *testing.T) {
	s, ts := newOverloadServer(t, &OverloadConfig{DegradedBudget: 50 * time.Millisecond})
	s.pool.queued.Store(10) // 0.50 of 20 → tier 1

	code, body := postPlan(t, ts.Client(), ts.URL, PlanRequest{
		Query: starDoc(6, 1000), PlanBudgetMS: 10_000,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.PlanBudgetMS != 50 {
		t.Fatalf("plan_budget_ms = %g, want 50 (capped)", resp.Stats.PlanBudgetMS)
	}
	if resp.PressureTier != tierTighten {
		t.Fatalf("pressure_tier = %d, want %d", resp.PressureTier, tierTighten)
	}

	code, body = postPlan(t, ts.Client(), ts.URL, PlanRequest{
		Query: starDoc(6, 2000), PlanBudgetMS: 5,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.PlanBudgetMS != 5 {
		t.Fatalf("plan_budget_ms = %g, want 5 (request's tighter budget kept)", resp.Stats.PlanBudgetMS)
	}
}

// TestServerTierShed: at tier 3 /plan and /batch are rejected with 429
// + Retry-After before any planning work, the shed counter advances,
// and /metrics + /healthz expose the tier.
func TestServerTierShed(t *testing.T) {
	s, ts := newOverloadServer(t, &OverloadConfig{})
	s.pool.queued.Store(19) // 0.95 of 20 → tier 3

	code, body := postPlan(t, ts.Client(), ts.URL, PlanRequest{Query: starDoc(4, 100)})
	if code != http.StatusTooManyRequests {
		t.Fatalf("plan status = %d, body %s", code, body)
	}

	breq, _ := json.Marshal(BatchRequest{Queries: []*repro.QueryJSON{starDoc(4, 100)}})
	resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(string(breq)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.ladder.sheds.Load(); got != 2 {
		t.Fatalf("sheds = %d, want 2", got)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"dpserved_pressure_tier 3",
		"dpserved_pressure_shed_total 2",
		`dpserved_pressure_transitions_total{tier="3"} 1`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbody)
		}
	}

	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hz.PressureTier != tierShed {
		t.Fatalf("healthz pressure_tier = %d, want %d", hz.PressureTier, tierShed)
	}
}

// TestServerLadderDisabledByDefault: without Config.Overload, a
// saturated-looking queue neither rewrites nor sheds, and no pressure
// metrics are emitted.
func TestServerLadderDisabledByDefault(t *testing.T) {
	s := New(Config{Planner: repro.NewPlanner(), Workers: 2, QueueDepth: 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.pool.queued.Store(20)

	code, body := postPlan(t, ts.Client(), ts.URL, PlanRequest{
		Query: starDoc(8, 300), Algorithm: "dphyp",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "dphyp" {
		t.Fatalf("algorithm = %q, want dphyp (no ladder, no rewrite)", resp.Algorithm)
	}
	if resp.PressureTier != 0 {
		t.Fatalf("pressure_tier = %d, want 0", resp.PressureTier)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(mbody), "dpserved_pressure_tier") {
		t.Fatalf("/metrics emits pressure metrics with the ladder disabled:\n%s", mbody)
	}
}
