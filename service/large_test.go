package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// largeChainDoc builds an n-relation chain document with PK–FK-style
// selectivities (sel ≈ 1/card), the regime real schemas occupy at this
// scale: cardinality estimates stay finite out to hundreds of joins.
func largeChainDoc(n int) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	for i := 0; i < n; i++ {
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: fmt.Sprintf("t%d", i), Card: float64(1000 + 10*i),
		})
	}
	for i := 0; i+1 < n; i++ {
		doc.Edges = append(doc.Edges, repro.EdgeJSON{
			Left: []int{i}, Right: []int{i + 1}, Sel: 1.0 / float64(1000+10*i),
		})
	}
	return doc
}

// largeStarDoc builds an n-relation star document (hub + n-1
// satellites) in the same PK–FK regime.
func largeStarDoc(n int) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	doc.Relations = append(doc.Relations, repro.RelationJSON{Name: "fact", Card: 1e6})
	for i := 1; i < n; i++ {
		card := float64(100 + 10*i)
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: fmt.Sprintf("dim%d", i), Card: card,
		})
		doc.Edges = append(doc.Edges, repro.EdgeJSON{
			Left: []int{0}, Right: []int{i}, Sel: 1.0 / card,
		})
	}
	return doc
}

// leafCount walks a wire-format plan tree counting scan leaves.
func leafCount(n *PlanNodeJSON) int {
	if n == nil {
		return 0
	}
	if n.Left == nil && n.Right == nil {
		return 1
	}
	return leafCount(n.Left) + leafCount(n.Right)
}

// TestPlanLargeQueryOverHTTP is the service-side acceptance smoke:
// 100-relation chain and star documents plan over the wire under
// "auto", route to the iterdp tier, return full-coverage plans, and —
// matching the CI budget — finish well under two seconds each.
func TestPlanLargeQueryOverHTTP(t *testing.T) {
	s := New(Config{Planner: repro.NewPlanner()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name string
		doc  *repro.QueryJSON
	}{
		{"chain100", largeChainDoc(100)},
		{"star100", largeStarDoc(100)},
	} {
		start := time.Now()
		code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: tc.doc, Algorithm: "auto"})
		elapsed := time.Since(start)
		if code != http.StatusOK {
			t.Fatalf("%s: POST /plan: %d: %s", tc.name, code, body)
		}
		var resp PlanResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("%s: decoding response: %v", tc.name, err)
		}
		if resp.Algorithm != "iterdp" {
			t.Errorf("%s: algorithm %q, want iterdp", tc.name, resp.Algorithm)
		}
		if resp.Stats.RoutedAlgorithm != "iterdp" {
			t.Errorf("%s: routed_algorithm %q, want iterdp", tc.name, resp.Stats.RoutedAlgorithm)
		}
		if got := leafCount(resp.Plan); got != len(tc.doc.Relations) {
			t.Errorf("%s: plan has %d leaves, want %d", tc.name, got, len(tc.doc.Relations))
		}
		if resp.Cost <= 0 {
			t.Errorf("%s: non-positive cost %v", tc.name, resp.Cost)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%s: planning took %v, budget is 2s", tc.name, elapsed)
		}
	}

	// The explicit algorithm name is part of the wire format too.
	code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: largeChainDoc(80), Algorithm: "iterdp"})
	if code != http.StatusOK {
		t.Fatalf("explicit iterdp: POST /plan: %d: %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "iterdp" || leafCount(resp.Plan) != 80 {
		t.Fatalf("explicit iterdp: algorithm %q with %d leaves", resp.Algorithm, leafCount(resp.Plan))
	}
}
