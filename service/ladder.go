package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The overload degradation ladder: when the server comes under pressure
// it gives up plan quality before it gives up availability, one tier at
// a time, and sheds only as a last resort.
//
//	tier 0  normal     — requests plan as asked
//	tier 1  tighten    — an effective plan budget is imposed (or the
//	                     request's own is capped), so the budget router
//	                     degrades expensive shapes to cheaper rungs
//	tier 2  greedy     — every request plans greedy-only: O(n³) per
//	                     plan, no enumeration can pile up
//	tier 3  shed       — new planning requests are rejected with 429 +
//	                     Retry-After; admitted work keeps draining
//
// Pressure is the max of two signals: admission-queue depth as a
// fraction of capacity (the leading indicator — the queue grows before
// latency does) and the windowed p99 of observed planning latency
// against the configured target (the trailing confirmation). Latency
// alone never sheds — a slow-but-keeping-up server degrades quality
// instead — so tier 3 is reachable only through a saturated queue.
//
// Escalation is immediate; de-escalation steps down one tier at a time
// after pressure has stayed below the current tier for a hold period.
// The asymmetry is the hysteresis: a borderline server settles one tier
// above its steady state instead of flapping across the boundary on
// every scrape.
const (
	tierNormal  = 0
	tierTighten = 1
	tierGreedy  = 2
	tierShed    = 3
	numTiers    = 4
)

// Queue-depth pressure thresholds, as fractions of queue capacity.
const (
	queueTightenFrac = 0.50
	queueGreedyFrac  = 0.75
	queueShedFrac    = 0.95
)

// OverloadConfig enables and tunes the degradation ladder (see the tier
// table above). The zero value of each field takes its default;
// a nil *OverloadConfig in Config disables the ladder entirely.
type OverloadConfig struct {
	// TargetP99 is the planning-latency SLO the ladder defends: the
	// windowed p99 crossing it is one pressure level, crossing twice it
	// is two (capped at tier 2 — latency never sheds). Zero disables
	// the latency signal, leaving queue depth as the only driver.
	TargetP99 time.Duration
	// Window is the sliding window over which the p99 is computed.
	// Default 10s.
	Window time.Duration
	// Hold is how long raw pressure must stay below the current tier
	// before the ladder de-escalates one step. Default 5s.
	Hold time.Duration
	// DegradedBudget is the plan budget imposed at tier 1 and above on
	// requests that did not carry a tighter one, feeding the planner's
	// budget router. Default 50ms.
	DegradedBudget time.Duration
}

func (c *OverloadConfig) withDefaults() OverloadConfig {
	out := *c
	if out.Window <= 0 {
		out.Window = 10 * time.Second
	}
	if out.Hold <= 0 {
		out.Hold = 5 * time.Second
	}
	if out.DegradedBudget <= 0 {
		out.DegradedBudget = 50 * time.Millisecond
	}
	return out
}

// ladder is the tier state machine. The clock is injectable so the
// hysteresis tests can walk simulated time through escalation, hold,
// and recovery deterministically.
type ladder struct {
	cfg  OverloadConfig
	pool *pool
	now  func() time.Time

	mu        sync.Mutex
	tier      int
	lastAbove time.Time // last instant raw pressure was ≥ the current tier
	win       *latencyWindow

	transitions [numTiers]atomic.Uint64 //dp:atomic entries into each tier
	sheds       atomic.Uint64           //dp:atomic requests rejected at tier 3
}

func newLadder(cfg OverloadConfig, p *pool, now func() time.Time) *ladder {
	if now == nil {
		now = time.Now
	}
	l := &ladder{cfg: cfg.withDefaults(), pool: p, now: now}
	l.win = newLatencyWindow(l.cfg.Window)
	l.lastAbove = now()
	return l
}

// observe feeds one successful planning request's wall time into the
// latency window.
func (l *ladder) observe(d time.Duration) {
	l.mu.Lock()
	l.win.observe(d, l.now())
	l.mu.Unlock()
}

// rawTier computes the instantaneous pressure from both signals.
func (l *ladder) rawTier(now time.Time) int {
	tier := tierNormal
	if qcap := float64(l.pool.queueCap); qcap > 0 {
		queued, _ := l.pool.gauges()
		frac := float64(queued) / qcap
		switch {
		case frac >= queueShedFrac:
			tier = tierShed
		case frac >= queueGreedyFrac:
			tier = tierGreedy
		case frac >= queueTightenFrac:
			tier = tierTighten
		}
	}
	if l.cfg.TargetP99 > 0 {
		if p99, ok := l.win.p99(now); ok {
			lat := tierNormal
			switch {
			case p99 >= 2*l.cfg.TargetP99:
				lat = tierGreedy
			case p99 >= l.cfg.TargetP99:
				lat = tierTighten
			}
			if lat > tier {
				tier = lat
			}
		}
	}
	return tier
}

// current evaluates the ladder and returns the tier a request arriving
// now must plan under.
func (l *ladder) current() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	raw := l.rawTier(now)
	switch {
	case raw > l.tier:
		// Escalate immediately — overload compounds while a ladder
		// deliberates.
		l.tier = raw
		l.lastAbove = now
		l.transitions[raw].Add(1)
	case raw == l.tier:
		l.lastAbove = now
	default:
		// Below the current tier: step down one tier per elapsed hold
		// period, never straight to the raw value, so recovery is as
		// deliberate as escalation was instant.
		if now.Sub(l.lastAbove) >= l.cfg.Hold && l.tier > tierNormal {
			l.tier--
			l.lastAbove = now
			l.transitions[l.tier].Add(1)
		}
	}
	return l.tier
}

// latencyWindow is a rotating-slot sliding histogram: the window is
// split into slots, observations land in the newest slot, and slots
// older than the window are zeroed as time advances. p99 is then the
// interpolated quantile over the live slots. All methods are called
// under the ladder's lock.
type latencyWindow struct {
	bounds   []float64
	slots    [][]uint64
	counts   []uint64
	slotDur  time.Duration
	cur      int
	curStart time.Time
	started  bool
}

const windowSlots = 8

func newLatencyWindow(window time.Duration) *latencyWindow {
	w := &latencyWindow{
		bounds:  obs.DefaultBounds,
		slots:   make([][]uint64, windowSlots),
		counts:  make([]uint64, windowSlots),
		slotDur: window / windowSlots,
	}
	for i := range w.slots {
		w.slots[i] = make([]uint64, len(w.bounds)+1) // +1: overflow bucket
	}
	return w
}

// rotate advances the current slot pointer to now, zeroing every slot
// that expired in between.
func (w *latencyWindow) rotate(now time.Time) {
	if !w.started {
		w.started = true
		w.curStart = now
		return
	}
	steps := int(now.Sub(w.curStart) / w.slotDur)
	if steps <= 0 {
		return
	}
	if steps > windowSlots {
		steps = windowSlots
	}
	for i := 0; i < steps; i++ {
		w.cur = (w.cur + 1) % windowSlots
		for j := range w.slots[w.cur] {
			w.slots[w.cur][j] = 0
		}
		w.counts[w.cur] = 0
	}
	w.curStart = w.curStart.Add(now.Sub(w.curStart) / w.slotDur * w.slotDur)
}

func (w *latencyWindow) observe(d time.Duration, now time.Time) {
	w.rotate(now)
	s := d.Seconds()
	idx := len(w.bounds) // overflow
	for i, b := range w.bounds {
		if s <= b {
			idx = i
			break
		}
	}
	w.slots[w.cur][idx]++
	w.counts[w.cur]++
}

// p99 interpolates the 99th percentile over the live window; ok is
// false when the window holds no observations. Overflow mass reports
// the last bound — a lower bound on the truth, which for an overload
// detector errs toward engaging.
func (w *latencyWindow) p99(now time.Time) (time.Duration, bool) {
	w.rotate(now)
	var count uint64
	for _, c := range w.counts {
		count += c
	}
	if count == 0 {
		return 0, false
	}
	merged := make([]uint64, len(w.bounds)+1)
	for _, slot := range w.slots {
		for j, v := range slot {
			merged[j] += v
		}
	}
	target := 0.99 * float64(count)
	var cum uint64
	for i, b := range merged {
		prev := cum
		cum += b
		if float64(cum) >= target && b > 0 {
			if i >= len(w.bounds) {
				return time.Duration(w.bounds[len(w.bounds)-1] * float64(time.Second)), true
			}
			lo := 0.0
			if i > 0 {
				lo = w.bounds[i-1]
			}
			frac := (target - float64(prev)) / float64(b)
			if frac < 0 {
				frac = 0
			}
			sec := lo + (w.bounds[i]-lo)*frac
			return time.Duration(sec * float64(time.Second)), true
		}
	}
	return time.Duration(w.bounds[len(w.bounds)-1] * float64(time.Second)), true
}
