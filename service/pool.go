package service

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/chaos"
)

// ErrQueueFull is returned by pool.acquire when the admission queue is
// at capacity. The server maps it to 429 Too Many Requests: under
// overload, shedding the excess immediately keeps latency bounded for
// the requests that were admitted, instead of letting the queue grow
// until every caller times out.
var ErrQueueFull = errors.New("service: admission queue full")

// pool is the bounded worker pool with admission control. At most
// `workers` enumerations run concurrently; at most `queueCap` further
// requests wait for a slot. Everything beyond that is rejected with
// ErrQueueFull at acquire time.
type pool struct {
	sem      chan struct{} // capacity = workers; holding a token = running
	queueCap int64

	queued     atomic.Int64  // requests waiting for a slot
	running    atomic.Int64  // requests holding a slot
	rejections atomic.Uint64 // lifetime ErrQueueFull rejections
}

func newPool(workers, queueCap int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &pool{sem: make(chan struct{}, workers), queueCap: int64(queueCap)}
}

// acquire obtains a worker slot, waiting in the admission queue if all
// slots are busy. It fails fast with ErrQueueFull when the queue is at
// capacity, and with ctx.Err() when the caller's deadline expires while
// still queued. On success the caller must release().
func (p *pool) acquire(ctx context.Context) error {
	// Fault injection: an armed error simulates a saturated pool
	// (ErrQueueFull drives the shedding path), a delay starves
	// admission without occupying workers.
	if chaos.Armed() {
		if err := chaos.Inject(chaos.SitePoolAcquire); err != nil {
			return err
		}
	}
	// Fast path: a free slot needs no queueing accounting.
	select {
	case p.sem <- struct{}{}:
		p.running.Add(1)
		return nil
	default:
	}
	if p.queued.Add(1) > p.queueCap {
		p.queued.Add(-1)
		p.rejections.Add(1)
		return ErrQueueFull
	}
	defer p.queued.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a worker slot.
func (p *pool) release() {
	p.running.Add(-1)
	<-p.sem
}

// gauges returns the live queue depth and running count.
func (p *pool) gauges() (queued, running int64) {
	return p.queued.Load(), p.running.Load()
}

func (p *pool) workers() int { return cap(p.sem) }
