package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// starDoc builds a star query document: relation 0 is the hub, joined
// to n-1 satellites. centerCard varies the fingerprint between tests.
func starDoc(n int, centerCard float64) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	doc.Relations = append(doc.Relations, repro.RelationJSON{Name: "hub", Card: centerCard})
	for i := 1; i < n; i++ {
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: fmt.Sprintf("sat%d", i), Card: float64(100 * i),
		})
		doc.Edges = append(doc.Edges, repro.EdgeJSON{
			Left: []int{0}, Right: []int{i}, Sel: 0.01,
		})
	}
	return doc
}

// fakePlanner is a gated Planner backend: every call signals began,
// then blocks until release is closed (or the call's context expires).
// With release nil, calls return immediately. It makes concurrency
// scenarios — coalescing, queue saturation, draining — deterministic.
type fakePlanner struct {
	res     *repro.Result
	calls   atomic.Int64
	began   chan struct{}
	release chan struct{}
}

func (f *fakePlanner) run(ctx context.Context) (*repro.Result, error) {
	f.calls.Add(1)
	if f.began != nil {
		f.began <- struct{}{}
	}
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return f.res, nil
}

func (f *fakePlanner) Plan(ctx context.Context, q *repro.Query, opts ...repro.Option) (*repro.Result, error) {
	return f.run(ctx)
}

func (f *fakePlanner) PlanJSON(ctx context.Context, doc *repro.QueryJSON, opts ...repro.Option) (*repro.Result, error) {
	return f.run(ctx)
}

func (f *fakePlanner) Metrics() repro.PlannerMetrics { return repro.PlannerMetrics{} }

// testResult plans a tiny real query once, to give fakes a structurally
// valid result to serve.
func testResult(t *testing.T) *repro.Result {
	t.Helper()
	q := repro.NewQuery()
	a := q.Relation("a", 10)
	b := q.Relation("b", 20)
	q.Join(a, b, 0.1)
	res, err := repro.NewPlanner().Plan(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tryPostPlan marshals req and posts it to url+"/plan". Goroutine-safe
// (no t.Fatal); errors surface to the caller.
func tryPostPlan(client *http.Client, url string, req PlanRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// postPlan is tryPostPlan for the test's own goroutine.
func postPlan(t *testing.T, client *http.Client, url string, req PlanRequest) (int, []byte) {
	t.Helper()
	code, out, err := tryPostPlan(client, url, req)
	if err != nil {
		t.Fatal(err)
	}
	return code, out
}

// TestPlanRoundTrip: a star query plans over HTTP, reports its routing
// decision, matches the library's own answer, and hits the plan cache
// on the second call.
func TestPlanRoundTrip(t *testing.T) {
	planner := repro.NewPlanner()
	s := New(Config{Planner: planner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	doc := starDoc(6, 1e6)
	code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: doc, Algorithm: "auto"})
	if code != http.StatusOK {
		t.Fatalf("POST /plan: %d: %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Plan == nil || resp.Cost <= 0 {
		t.Fatalf("degenerate response: %+v", resp)
	}
	if resp.Stats.Shape != "star" || resp.Stats.RoutedAlgorithm != "dphyp" {
		t.Errorf("routing: shape=%q routed=%q, want star/dphyp", resp.Stats.Shape, resp.Stats.RoutedAlgorithm)
	}

	// The served cost matches planning the same document directly.
	want, err := repro.NewPlanner().PlanJSON(context.Background(), doc, repro.WithAlgorithm(repro.SolverAuto))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost != want.Cost() {
		t.Errorf("served cost %g != direct cost %g", resp.Cost, want.Cost())
	}

	// Leaf names survive the wire.
	leaf := resp.Plan
	for leaf.Left != nil {
		leaf = leaf.Left
	}
	if leaf.Relation == "" {
		t.Error("leaf lost its relation name")
	}

	// Second identical request: plan cache hit.
	code, body = postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: doc, Algorithm: "auto"})
	if code != http.StatusOK {
		t.Fatalf("second POST /plan: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Stats.CacheHit {
		t.Error("second identical request missed the plan cache")
	}
}

// TestPlanTreeDocument: tree documents (non-inner joins) plan through
// the conflict-analysis path and coalesce on a document hash.
func TestPlanTreeDocument(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rel := func(i int) *int { return &i }
	doc := &repro.QueryJSON{
		Relations: []repro.RelationJSON{
			{Name: "fact", Card: 1e6}, {Name: "dim1", Card: 1000}, {Name: "dim2", Card: 500},
		},
		Tree: &repro.TreeJSON{
			Op: "antijoin",
			Left: &repro.TreeJSON{
				Op:   "join",
				Left: &repro.TreeJSON{Rel: rel(0)}, Right: &repro.TreeJSON{Rel: rel(1)},
				Pred: []int{0, 1}, Sel: 0.001,
			},
			Right: &repro.TreeJSON{Rel: rel(2)},
			Pred:  []int{0, 2}, Sel: 0.002,
		},
	}
	code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: doc})
	if code != http.StatusOK {
		t.Fatalf("POST /plan (tree): %d: %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(*PlanNodeJSON)
	walk = func(n *PlanNodeJSON) {
		if n == nil {
			return
		}
		if n.Op == "antijoin" {
			found = true
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(resp.Plan)
	if !found {
		t.Error("antijoin vanished from the served plan")
	}
}

// TestBadRequests: malformed input is rejected with 400 before any
// worker is committed.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	post := func(body string) int {
		resp, err := client.Post(srv.URL+"/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", code)
	}
	if code := post(`{}`); code != http.StatusBadRequest {
		t.Errorf("no query: %d, want 400", code)
	}
	if code := post(`{"query":{"relations":[]}}`); code != http.StatusBadRequest {
		t.Errorf("no relations: %d, want 400", code)
	}
	if code := post(`{"query":{"relations":[{"name":"a","card":1}],"edges":[{"left":[0],"right":[0],"sel":1}],"tree":{"rel":0}}`); code != http.StatusBadRequest {
		t.Errorf("edges+tree: %d, want 400", code)
	}

	doc := starDoc(3, 100)
	body, _ := json.Marshal(PlanRequest{Query: doc, Algorithm: "quantum"})
	if code := post(string(body)); code != http.StatusBadRequest {
		t.Errorf("unknown algorithm: %d, want 400", code)
	}

	resp, err := client.Get(srv.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan: %d, want 405", resp.StatusCode)
	}
}

// TestCoalescing64Gated: 64 concurrent identical requests, with the
// backend gated so all of them are provably in flight at once, call the
// planner exactly once; 63 responses are marked coalesced.
func TestCoalescing64Gated(t *testing.T) {
	fake := &fakePlanner{
		res:     testResult(t),
		began:   make(chan struct{}, 128),
		release: make(chan struct{}),
	}
	s := New(Config{Planner: fake, Workers: 4, QueueDepth: 128})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 64
	doc := starDoc(8, 1e6)
	codes := make(chan int, n)
	coalesced := make(chan bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: doc})
			if err != nil {
				t.Errorf("post: %v", err)
			}
			var resp PlanResponse
			if code == http.StatusOK {
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("decode: %v", err)
				}
			}
			codes <- code
			coalesced <- resp.Coalesced
		}()
	}

	<-fake.began // the leader reached the backend
	waitFor(t, func() bool { return s.co.waiting.Load() == n-1 }, "63 followers parked on the leader")
	close(fake.release)
	wg.Wait()
	close(codes)
	close(coalesced)

	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("request finished %d, want 200", code)
		}
	}
	var sharedN int
	for c := range coalesced {
		if c {
			sharedN++
		}
	}
	if got := fake.calls.Load(); got != 1 {
		t.Errorf("backend planned %d times for %d identical requests, want exactly 1", got, n)
	}
	if sharedN != n-1 {
		t.Errorf("%d responses marked coalesced, want %d", sharedN, n-1)
	}
}

// TestCoalescing64RealPlanner: the same herd against the real planner —
// however the 64 requests interleave, the library enumerates the query
// exactly once (coalesced while in flight, plan-cache hits after).
func TestCoalescing64RealPlanner(t *testing.T) {
	planner := repro.NewPlanner()
	s := New(Config{Planner: planner, Workers: 4, QueueDepth: 128})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 64
	doc := starDoc(10, 5e5)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, body, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: doc})
			if err != nil || code != http.StatusOK {
				t.Errorf("request: %d (%v): %s", code, err, body)
			}
		}()
	}
	close(start)
	wg.Wait()

	m := planner.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("planner enumerated %d times for %d identical requests, want exactly 1", m.CacheMisses, n)
	}
	if total := int(m.Plans) + int(s.co.coalesced.Load()); total != n {
		t.Errorf("plans(%d) + coalesced(%d) = %d, want %d", m.Plans, s.co.coalesced.Load(), total, n)
	}
}

// panicThenOKPlanner panics on its first call (after parking at the
// gate) and serves normally afterwards.
type panicThenOKPlanner struct {
	res     *repro.Result
	calls   atomic.Int64
	began   chan struct{}
	release chan struct{}
}

func (p *panicThenOKPlanner) Plan(ctx context.Context, q *repro.Query, opts ...repro.Option) (*repro.Result, error) {
	if p.calls.Add(1) == 1 {
		p.began <- struct{}{}
		<-p.release
		panic("backend exploded")
	}
	return p.res, nil
}

func (p *panicThenOKPlanner) PlanJSON(ctx context.Context, doc *repro.QueryJSON, opts ...repro.Option) (*repro.Result, error) {
	return p.Plan(ctx, nil, opts...)
}

func (p *panicThenOKPlanner) Metrics() repro.PlannerMetrics { return repro.PlannerMetrics{} }

// TestCoalescedLeaderPanicRecovery: a panicking leader costs only its
// own request (500); coalesced followers re-elect a leader and succeed
// instead of inheriting the crash or hanging.
func TestCoalescedLeaderPanicRecovery(t *testing.T) {
	fake := &panicThenOKPlanner{
		res:     testResult(t),
		began:   make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	s := New(Config{Planner: fake, Workers: 2, QueueDepth: 16})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 4
	doc := starDoc(6, 777)
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: doc})
			if err != nil {
				t.Errorf("post: %v", err)
			}
			codes <- code
		}()
	}
	<-fake.began
	waitFor(t, func() bool { return s.co.waiting.Load() == n-1 }, "followers parked on doomed leader")
	close(fake.release)
	wg.Wait()
	close(codes)

	got := map[int]int{}
	for code := range codes {
		got[code]++
	}
	if got[http.StatusInternalServerError] != 1 || got[http.StatusOK] != n-1 {
		t.Errorf("status distribution %v, want exactly one 500 and %d 200s", got, n-1)
	}
	if s.met.panics.Load() != 1 {
		t.Errorf("recorded panics = %d, want 1", s.met.panics.Load())
	}
}

// TestQueueSaturation: with one worker held and the queue full,
// additional distinct requests are shed with 429 + Retry-After instead
// of piling up; once the worker frees, the queued requests complete.
func TestQueueSaturation(t *testing.T) {
	fake := &fakePlanner{
		res:     testResult(t),
		began:   make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	s := New(Config{Planner: fake, Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Distinct cardinalities → distinct fingerprints → no coalescing.
	codes := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		card := float64(1000 * (i + 1))
		go func() {
			defer wg.Done()
			code, _, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, card)})
			if err != nil {
				t.Errorf("post: %v", err)
			}
			codes <- code
		}()
	}
	<-fake.began // one request holds the only worker
	waitFor(t, func() bool { q, _ := s.pool.gauges(); return q == 2 }, "two requests queued")

	// The 4th distinct request overflows the queue.
	body, _ := json.Marshal(PlanRequest{Query: starDoc(5, 9999)})
	resp, err := srv.Client().Post(srv.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}

	close(fake.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished %d, want 200", code)
		}
	}
	if got := s.pool.rejections.Load(); got != 1 {
		t.Errorf("rejections = %d, want 1", got)
	}
}

// TestDeadlines: a request deadline that expires while queued or while
// planning reports 504.
func TestDeadlines(t *testing.T) {
	fake := &fakePlanner{
		res:     testResult(t),
		began:   make(chan struct{}, 16),
		release: make(chan struct{}), // never closed: planning hangs until ctx
	}
	s := New(Config{Planner: fake, Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Mid-plan: the backend observes the cancellation.
	code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, 1000), TimeoutMS: 40})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("mid-plan deadline: %d: %s, want 504", code, body)
	}

	// While queued: a second request can't reach the worker the first
	// (still hanging until its own deadline...) — occupy the worker with
	// a long-deadline request first.
	go tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, 2000), TimeoutMS: 5000})
	<-fake.began
	code, body = postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, 3000), TimeoutMS: 40})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued deadline: %d: %s, want 504", code, body)
	}
}

// TestShutdownDrains: Shutdown refuses new work with 503 but lets the
// admitted request finish; it returns only after the last in-flight
// request completed.
func TestShutdownDrains(t *testing.T) {
	fake := &fakePlanner{
		res:     testResult(t),
		began:   make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	s := New(Config{Planner: fake, Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	inflightCode := make(chan int, 1)
	go func() {
		code, _, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, 1000), TimeoutMS: 10_000})
		if err != nil {
			t.Errorf("in-flight post: %v", err)
		}
		inflightCode <- code
	}()
	<-fake.began // the request is planning

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, s.Draining, "server draining")

	// New work is refused while draining.
	code, _ := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: starDoc(5, 2000)})
	if code != http.StatusServiceUnavailable {
		t.Errorf("request during drain: %d, want 503", code)
	}
	// /healthz flips so load balancers stop routing.
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Errorf("healthz during drain: %d %q, want 503 draining", resp.StatusCode, hz.Status)
	}

	// Shutdown is still waiting on the in-flight request.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(fake.release)
	if code := <-inflightCode; code != http.StatusOK {
		t.Errorf("in-flight request finished %d during drain, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestBatchEndpoint: per-query failures stay inside their Results slot.
func TestBatchEndpoint(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req := BatchRequest{
		Queries: []*repro.QueryJSON{
			starDoc(4, 1000),
			{Relations: []repro.RelationJSON{{Name: "lonely", Card: 1}}}, // no edges: invalid
			starDoc(5, 2000),
		},
	}
	body, _ := json.Marshal(req)
	resp, err := srv.Client().Post(srv.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch: %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[0].PlanResponse == nil || out.Results[0].Cost <= 0 {
		t.Errorf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == "" {
		t.Error("invalid query 1 did not report an error")
	}
	if out.Results[2].Error != "" || out.Results[2].PlanResponse == nil {
		t.Errorf("healthy query 2 dragged down: %+v", out.Results[2])
	}
}

// TestMetricsEndpoint: the exposition carries server and planner series
// that reflect actual traffic.
func TestMetricsEndpoint(t *testing.T) {
	planner := repro.NewPlanner()
	s := New(Config{Planner: planner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	doc := starDoc(5, 4e5)
	for i := 0; i < 3; i++ {
		if code, body := postPlan(t, srv.Client(), srv.URL, PlanRequest{Query: doc, Algorithm: "auto"}); code != 200 {
			t.Fatalf("warmup: %d: %s", code, body)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(text)
	for _, want := range []string{
		"planner_plans_total 3",
		"planner_cache_hits_total 2",
		"planner_cache_misses_total 1",
		// Routing happens before the cache lookup, so hits count too.
		`planner_auto_routed_total{algorithm="dphyp"} 3`,
		`dpserved_http_requests_total{path="/plan",code="200"} 3`,
		"dpserved_request_duration_seconds_count 3",
		"dpserved_workers",
		"dpserved_queue_capacity",
		"dpserved_coalesce_leaders_total",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHealthz: the liveness endpoint reports gauges and 200 while
// serving.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 3})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Workers != 3 {
		t.Errorf("healthz: %+v", hz)
	}
}
