package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro"
)

// errLeaderAborted is what followers receive when their leader's fn
// panicked (the panic itself propagates on the leader's goroutine and
// is turned into a 500 by the middleware). The server retries these
// through a fresh coalescing round.
var errLeaderAborted = errors.New("service: coalesced leader aborted")

// coalescer collapses concurrent identical planning requests onto one
// in-flight call (singleflight). The first request for a key becomes
// the leader and runs fn; requests arriving for the same key while the
// leader is in flight become followers: they run nothing and receive
// the leader's result. The key embeds the canonical graph fingerprint
// plus the planning options, so "identical" means plan-equivalent, not
// byte-equal.
//
// Unlike a cache, a coalescer holds no completed results: the entry is
// removed before the followers are released, so a request that arrives
// after completion plans normally (and typically hits the plan cache).
type coalescer struct {
	mu sync.Mutex
	m  map[string]*call

	waiting   atomic.Int64  // followers currently blocked on a leader
	leaders   atomic.Uint64 // lifetime leader executions
	coalesced atomic.Uint64 // lifetime follower hits
}

type call struct {
	done chan struct{}
	res  *repro.Result
	err  error
}

func newCoalescer() *coalescer {
	return &coalescer{m: make(map[string]*call)}
}

// do runs fn for key, unless an identical call is already in flight, in
// which case it waits for that call and returns its result with
// shared=true. A follower whose own ctx expires stops waiting and
// returns ctx.Err() — the leader keeps running for the others.
//
// A leader's result is shared verbatim: followers must treat the
// *repro.Result (and its plan tree) as read-only.
func (c *coalescer) do(ctx context.Context, key string, fn func() (*repro.Result, error)) (res *repro.Result, shared bool, err error) {
	c.mu.Lock()
	if cl, ok := c.m[key]; ok {
		c.mu.Unlock()
		c.waiting.Add(1)
		defer c.waiting.Add(-1)
		select {
		case <-cl.done:
			c.coalesced.Add(1)
			return cl.res, true, cl.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.m[key] = cl
	c.mu.Unlock()

	c.leaders.Add(1)
	// The cleanup must survive a panicking fn: otherwise the dead entry
	// would absorb every future request for this key forever. Unpublish
	// before releasing the followers so a request arriving after
	// completion starts a fresh call instead of reading a stale result.
	finished := false
	defer func() {
		if !finished {
			cl.err = errLeaderAborted
		}
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
		close(cl.done)
	}()
	cl.res, cl.err = fn()
	finished = true
	return cl.res, false, cl.err
}
