package service

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/obs"
)

// planObserver is the optional backend surface the observability layer
// consumes: *repro.Planner implements it, test fakes need not. When the
// backend lacks it, the dimensional metrics, /debug/history, and the
// planner_plan_seconds family are simply absent.
type planObserver interface {
	PlanObs() *obs.PlanMetrics
}

// baselineSetter is the optional backend surface through which the
// loaded planning-cost history is handed to the budget router
// (repro.Planner.SetBaselineHistory), so WithPlanBudget routing starts
// from persisted measurements instead of the static tables.
type baselineSetter interface {
	SetBaselineHistory(h *obs.History)
}

// cacheSnapshotter is the optional backend surface for warm-start
// snapshots: *repro.Planner implements it with its plan-cache
// persistence (repro's snapshot.go). Backends without it simply run
// with Config.SnapshotPath ignored (logged once at startup).
type cacheSnapshotter interface {
	SaveCacheSnapshot(path string) error
	LoadCacheSnapshot(path string) (int, error)
}

// fingerprintOf condenses a coalescing/cache key into the short stable
// hash that identifies the query in logs and /debug/plans.
func fingerprintOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// observePlan records one finished planning request into the slow-plan
// ring and emits the structured plan log line (Warn above the slow-plan
// threshold, Info otherwise).
func (s *Server) observePlan(rid uint64, key string, res *repro.Result, coalesced bool, elapsed time.Duration) {
	st := res.Stats
	relations := 0
	if res.Graph != nil {
		relations = res.Graph.NumRels()
	}
	shape := st.Shape
	if shape == "" {
		shape = "unclassified"
	}
	fp := fingerprintOf(key)
	s.ring.Observe(obs.RingEntry{
		Time:        time.Now(),
		Fingerprint: fp,
		Shape:       shape,
		Algorithm:   res.Algorithm.String(),
		Relations:   relations,
		Duration:    elapsed,
		Pairs:       int64(st.CsgCmpPairs),
		Workers:     st.Workers,
		CacheHit:    st.CacheHit,
		Coalesced:   coalesced,
		Fallback:    st.FallbackGreedy,
		Trace:       st.Trace,
	})

	attrs := []any{
		"id", rid,
		"fingerprint", fp,
		"shape", shape,
		"algorithm", res.Algorithm.String(),
		"relations", relations,
		"duration_ms", float64(elapsed.Microseconds()) / 1000,
		"cache_hit", st.CacheHit,
		"coalesced", coalesced,
		"outcome", "ok",
	}
	if s.cfg.SlowPlanThreshold > 0 && elapsed >= s.cfg.SlowPlanThreshold {
		if tr := st.Trace; tr != nil {
			attrs = append(attrs,
				"enumerate_ms", float64(tr.PhaseTotal(obs.PhaseEnumerate).Microseconds())/1000,
				"iterdp_rounds_ms", float64(tr.PhaseTotal(obs.PhaseCluster).Microseconds())/1000)
		}
		s.log.Warn("slow plan", attrs...)
		return
	}
	s.log.Info("plan", attrs...)
}

// DebugHandler returns the debugging/profiling surface: net/http/pprof,
// the slow-plan ring, the planning-cost history, and live runtime
// stats. It is NOT part of Handler() — cmd/dpserved binds it to a
// separate, typically loopback-only, -debug-addr listener so profiling
// endpoints never face plan traffic. The read-only JSON surfaces
// (/debug/plans, /debug/history) are additionally mounted on the main
// handler for convenience.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/plans", s.handleDebugPlans)
	mux.HandleFunc("GET /debug/history", s.handleDebugHistory)
	mux.HandleFunc("GET /debug/runtime", s.handleDebugRuntime)
	return mux
}

// debugPlanJSON is one /debug/plans entry on the wire.
type debugPlanJSON struct {
	Seq         uint64     `json:"seq"`
	Time        string     `json:"time"`
	Fingerprint string     `json:"fingerprint"`
	Shape       string     `json:"shape"`
	Algorithm   string     `json:"algorithm"`
	Relations   int        `json:"relations"`
	DurationMS  float64    `json:"duration_ms"`
	Pairs       int64      `json:"pairs"`
	Workers     int        `json:"workers,omitempty"`
	CacheHit    bool       `json:"cache_hit,omitempty"`
	Coalesced   bool       `json:"coalesced,omitempty"`
	Fallback    bool       `json:"fallback_greedy,omitempty"`
	Trace       *TraceJSON `json:"trace,omitempty"`
}

// handleDebugPlans serves GET /debug/plans: the N slowest plans seen so
// far, slowest first, each with its explain trace when the request was
// traced (explain=1 or sampled).
func (s *Server) handleDebugPlans(w http.ResponseWriter, r *http.Request) {
	entries := s.ring.Snapshot()
	out := make([]debugPlanJSON, len(entries))
	for i, e := range entries {
		out[i] = debugPlanJSON{
			Seq:         e.Seq,
			Time:        e.Time.UTC().Format(time.RFC3339Nano),
			Fingerprint: e.Fingerprint,
			Shape:       e.Shape,
			Algorithm:   e.Algorithm,
			Relations:   e.Relations,
			DurationMS:  float64(e.Duration.Microseconds()) / 1000,
			Pairs:       e.Pairs,
			Workers:     e.Workers,
			CacheHit:    e.CacheHit,
			Coalesced:   e.Coalesced,
			Fallback:    e.Fallback,
			Trace:       traceJSON(e.Trace),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// debugHistoryJSON is the body of GET /debug/history.
type debugHistoryJSON struct {
	Persistent bool               `json:"persistent"`
	Series     []obs.HistoryEntry `json:"series"`
}

// handleDebugHistory serves GET /debug/history: the merged view of the
// loaded baseline plus the live dimensional metrics — exactly what the
// next history save would persist — with per-series p50/p99 derived.
func (s *Server) handleDebugHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, debugHistoryJSON{
		Persistent: s.histPath != "",
		Series:     s.historyView().Entries(),
	})
}

// handleDebugRuntime serves GET /debug/runtime: the process-level
// numbers worth glancing at before reaching for a profile.
func (s *Server) handleDebugRuntime(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, map[string]any{
		"goroutines":        runtime.NumGoroutine(),
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_inuse_bytes":  ms.HeapInuse,
		"heap_objects":      ms.HeapObjects,
		"gc_cycles":         ms.NumGC,
		"gc_pause_total_ms": float64(ms.PauseTotalNs) / 1e6,
		"next_gc_bytes":     ms.NextGC,
	})
}

// historyView returns the baseline merged with a live snapshot — the
// document a save would write. The baseline is immutable after New and
// the snapshot is freshly built, so no locking beyond PlanMetrics' own.
func (s *Server) historyView() *obs.History {
	h := s.histBase.Clone()
	if s.planObs != nil {
		// Both sides are over obs.DefaultBounds by construction; a bounds
		// mismatch here would be a bug, not an input error.
		if err := h.Merge(s.planObs.Snapshot()); err != nil {
			s.log.Error("history merge failed", "error", err)
		}
	}
	return h
}

// saveHistory persists the merged history atomically. A no-op without a
// usable HistoryPath.
func (s *Server) saveHistory() error {
	if s.histPath == "" {
		return nil
	}
	return s.historyView().Save(s.histPath)
}

// saveSnapshot persists the plan cache atomically. A no-op without a
// usable snapshot backend.
func (s *Server) saveSnapshot() error {
	if s.snap == nil || s.snapPath == "" {
		return nil
	}
	return s.snap.SaveCacheSnapshot(s.snapPath)
}

// periodicSaver runs a save function on a fixed cadence until halted.
// Both persistence surfaces (planning-cost history, plan-cache
// snapshot) use one: the cadence bounds what a crash can lose to one
// interval, and Shutdown performs the authoritative final save after
// halting the ticker, so the final save cannot race a periodic one.
type periodicSaver struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func startSaver(interval time.Duration, save func()) *periodicSaver {
	p := &periodicSaver{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				save()
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// halt stops the saver and waits for it to exit. Idempotent, and safe
// on a nil receiver (persistence disabled).
func (p *periodicSaver) halt() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.stop)
		<-p.done
	})
}

// writePlanSeconds renders the dimensional planning-latency family into
// a /metrics scrape when the backend exposes one.
func (s *Server) writePlanSeconds(w http.ResponseWriter) {
	if s.planObs == nil {
		return
	}
	s.planObs.WritePrometheus(w, "planner_plan_seconds")
}
