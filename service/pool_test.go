package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPoolAdmission: slots are bounded, the queue is bounded, and the
// overflow is rejected with ErrQueueFull instead of waiting.
func TestPoolAdmission(t *testing.T) {
	p := newPool(2, 1)
	ctx := context.Background()

	if err := p.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := p.acquire(ctx); err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if _, running := p.gauges(); running != 2 {
		t.Fatalf("running = %d, want 2", running)
	}

	// Third request queues.
	queuedErr := make(chan error, 1)
	go func() { queuedErr <- p.acquire(ctx) }()
	waitFor(t, func() bool { q, _ := p.gauges(); return q == 1 }, "third request queued")

	// Fourth overflows the queue: immediate rejection.
	if err := p.acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow acquire: err = %v, want ErrQueueFull", err)
	}
	if p.rejections.Load() != 1 {
		t.Fatalf("rejections = %d, want 1", p.rejections.Load())
	}

	// A release admits the queued request.
	p.release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	p.release()
	p.release()
	if q, running := p.gauges(); q != 0 || running != 0 {
		t.Fatalf("gauges after drain = (%d, %d), want (0, 0)", q, running)
	}
}

// TestPoolQueuedDeadline: a deadline that expires while queued returns
// the context's error and frees the queue slot.
func TestPoolQueuedDeadline(t *testing.T) {
	p := newPool(1, 4)
	if err := p.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued acquire: err = %v, want DeadlineExceeded", err)
	}
	waitFor(t, func() bool { q, _ := p.gauges(); return q == 0 }, "queue slot freed")
	p.release()
}

// waitFor polls cond until it holds or the test deadline budget runs
// out.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
