package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/oracle"
	"repro/internal/workload"
)

// autoShapes are canonical graphs paired with the algorithm the §4
// routing table must pick for them.
func autoShapes() []struct {
	name   string
	g      *Graph
	shape  string
	routed Algorithm
} {
	cfg := workload.DefaultConfig()
	return []struct {
		name   string
		g      *Graph
		shape  string
		routed Algorithm
	}{
		{"chain8", workload.Chain(8, cfg), "chain", DPsize},
		{"cycle8", workload.Cycle(8, cfg), "cycle", DPccp},
		{"star8", workload.Star(8, cfg), "star", DPhyp},
		{"clique6", workload.Clique(6, cfg), "clique", TopDown},
		{"grid3x3", workload.Grid(3, 3, cfg), "grid", DPhyp},
		// Hyperedges override the per-class table: DPhyp is the only
		// enumerator that never generates failing pairs on them.
		{"cyclehyper", workload.CycleHyper(8, 1, cfg), "cycle", DPhyp},
		// Beyond the exact cutoffs the router degrades to Greedy up
		// front.
		{"clique16", workload.Clique(16, cfg), "clique", Greedy},
		{"star20", workload.Star(20, cfg), "star", Greedy},
	}
}

// TestSolverAutoRouting: the routed algorithm, shape class, and actual
// algorithm are all visible to the caller.
func TestSolverAutoRouting(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	ctx := context.Background()
	for _, c := range autoShapes() {
		res, err := p.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		st := res.Stats
		if !st.AutoRouted {
			t.Errorf("%s: Stats.AutoRouted not set", c.name)
		}
		if st.Shape != c.shape {
			t.Errorf("%s: Stats.Shape = %q, want %q", c.name, st.Shape, c.shape)
		}
		if st.RoutedAlgorithm != c.routed.String() {
			t.Errorf("%s: routed to %q, want %q", c.name, st.RoutedAlgorithm, c.routed)
		}
		if res.Algorithm != c.routed {
			t.Errorf("%s: Result.Algorithm = %v, want %v", c.name, res.Algorithm, c.routed)
		}
	}
}

// TestSolverAutoMatchesRoutedSolver is the acceptance check that
// SolverAuto never returns a costlier plan than the solver it routed
// to, and that both sit exactly at the brute-force optimum for graphs
// the oracle can certify. Caching is disabled so the two runs cannot
// serve each other.
func TestSolverAutoMatchesRoutedSolver(t *testing.T) {
	auto := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	direct := NewPlanner(WithPlanCacheSize(0))
	ctx := context.Background()
	for _, c := range autoShapes() {
		if c.g.NumRels() > 10 {
			continue // keep the exact-vs-exact comparison fast
		}
		ares, err := auto.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s auto: %v", c.name, err)
		}
		dres, err := direct.PlanGraph(ctx, c.g, WithAlgorithm(c.routed))
		if err != nil {
			t.Fatalf("%s direct: %v", c.name, err)
		}
		if ares.Cost() > dres.Cost() {
			t.Errorf("%s: auto cost %g exceeds routed solver's %g", c.name, ares.Cost(), dres.Cost())
		}
		if c.routed == Greedy {
			continue
		}
		opt, err := oracle.Optimal(c.g, Cout)
		if err != nil {
			t.Fatalf("%s oracle: %v", c.name, err)
		}
		if ares.Cost() != opt.Cost {
			t.Errorf("%s: auto cost %.10g != oracle optimum %.10g", c.name, ares.Cost(), opt.Cost)
		}
	}
}

// TestSolverAutoBudgetFallback: when the budget trips mid-enumeration
// under SolverAuto, Stats must name both the solver the router picked
// and the greedy downgrade that actually produced the plan.
func TestSolverAutoBudgetFallback(t *testing.T) {
	p := NewPlanner(
		WithAlgorithm(SolverAuto),
		WithBudget(Budget{MaxCsgCmpPairs: 4}),
		WithPlanCacheSize(0),
	)
	g := workload.Star(10, workload.DefaultConfig())
	res, err := p.PlanGraph(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !st.AutoRouted || st.Shape != "star" {
		t.Errorf("routing not recorded: %+v", st)
	}
	if st.RoutedAlgorithm != DPhyp.String() {
		t.Errorf("RoutedAlgorithm = %q, want %q (the router's pick must survive the fallback)",
			st.RoutedAlgorithm, DPhyp)
	}
	if !st.BudgetExhausted || !st.FallbackGreedy {
		t.Errorf("budget trip not recorded: exhausted=%t fallback=%t", st.BudgetExhausted, st.FallbackGreedy)
	}
	if res.Algorithm != Greedy {
		t.Errorf("Result.Algorithm = %v, want Greedy", res.Algorithm)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Errorf("fallback plan invalid: %v", err)
	}

	// Without the fallback the same trip is a hard error that still
	// wraps ErrBudgetExhausted.
	strict := NewPlanner(
		WithAlgorithm(SolverAuto),
		WithBudget(Budget{MaxCsgCmpPairs: 4}),
		WithoutGreedyFallback(),
		WithPlanCacheSize(0),
	)
	if _, err := strict.PlanGraph(context.Background(), g); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("strict planner: got %v, want ErrBudgetExhausted", err)
	}
}

// TestSolverAutoConcurrent hammers one SolverAuto Planner from many
// goroutines over graphs of every shape class — the -race proof that
// classification, routing, and the annotated stats are safe on a
// shared planner. Costs must match a sequential reference run.
func TestSolverAutoConcurrent(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto))
	ctx := context.Background()
	shapes := autoShapes()

	want := make([]float64, len(shapes))
	for i, c := range shapes {
		res, err := p.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want[i] = res.Cost()
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := shapes[(w+i)%len(shapes)]
				res, err := p.PlanGraph(ctx, c.g)
				if err != nil {
					errc <- fmt.Errorf("%s: %w", c.name, err)
					return
				}
				if res.Cost() != want[(w+i)%len(shapes)] {
					errc <- fmt.Errorf("%s: concurrent cost %g != sequential %g",
						c.name, res.Cost(), want[(w+i)%len(shapes)])
					return
				}
				if !res.Stats.AutoRouted || res.Stats.RoutedAlgorithm == "" {
					errc <- fmt.Errorf("%s: routing stats missing under concurrency", c.name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestSolverAutoCacheHit: cached results keep the routing annotation,
// and a direct call for the routed algorithm sharing the cache entry
// does NOT inherit it.
func TestSolverAutoCacheHit(t *testing.T) {
	p := NewPlanner()
	ctx := context.Background()
	g := workload.Star(8, workload.DefaultConfig())

	first, err := p.PlanGraph(ctx, g, WithAlgorithm(SolverAuto))
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit || !first.Stats.AutoRouted {
		t.Fatalf("first call: %+v", first.Stats)
	}
	second, err := p.PlanGraph(ctx, g, WithAlgorithm(SolverAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Error("second auto call missed the cache")
	}
	if !second.Stats.AutoRouted || second.Stats.Shape != "star" || second.Stats.RoutedAlgorithm != DPhyp.String() {
		t.Errorf("cache hit lost routing annotation: %+v", second.Stats)
	}

	// A direct DPhyp call shares the entry (routing is deterministic)
	// but must not look auto-routed.
	direct, err := p.PlanGraph(ctx, g, WithAlgorithm(DPhyp))
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Stats.CacheHit {
		t.Error("direct call for the routed algorithm should share the cache entry")
	}
	if direct.Stats.AutoRouted || direct.Stats.Shape != "" {
		t.Errorf("direct call inherited routing annotation: %+v", direct.Stats)
	}
	if direct.Cost() != second.Cost() {
		t.Errorf("shared entry cost mismatch: %g vs %g", direct.Cost(), second.Cost())
	}
}
