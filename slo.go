package repro

// Planning-time SLOs: budget-aware routing.
//
// WithPlanBudget declares how long a planning call is allowed to take.
// On the SolverAuto path the router then walks a degradation ladder —
// exact enumeration → the iterative-DP tier → greedy — and picks the
// highest rung predicted to finish inside the budget, so an expensive
// topology degrades plan quality instead of blowing the deadline.
//
// Predictions come from three sources, warmest first:
//
//  1. The live shape × algorithm × n latency registry (PlanObs), once a
//     series has sloMinSamples observations — the planner's own recent
//     behavior on this hardware.
//  2. A baseline obs.History installed with SetBaselineHistory —
//     typically the persisted history a server loaded at startup, so a
//     restarted process routes with yesterday's measurements instead of
//     re-learning them.
//  3. Static tables derived from the paper's §4 csg-cmp-pair counts —
//     crude, but deterministic and monotone in n, which is all a cold
//     router needs to order the rungs.
//
// The predictions self-correct: a mis-predicted rung costs one slow (or
// one needlessly greedy) call, whose observed latency lands in the live
// registry and adjusts the next decision.

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/shape"
)

// WithPlanBudget sets a planning-time SLO for the call: on the
// SolverAuto path the router degrades to a cheaper algorithm when the
// topology route is predicted to miss d (see Stats.SLORung and
// Stats.SLODegraded); on every path the call's outcome against the
// budget is recorded in Stats.SLOMet and the planner's SLO counters.
// The budget is advisory for routing — it does not cancel a call that
// overruns it; combine with a context deadline for hard cutoffs.
// Zero or negative restores the default (no budget).
func WithPlanBudget(d time.Duration) Option {
	return func(o *options) { o.planBudget = d }
}

// The degradation-ladder rungs, cheapest last. Reported in
// Stats.SLORung so a caller (or the serving tier) can tell how much
// plan quality a budgeted call actually got.
const (
	rungExact  = 0 // full exact enumeration (DPhyp, DPccp, ...)
	rungIterDP = 1 // iterative DP: exact subproblems, heuristic composition
	rungGreedy = 2 // GOO: O(n³) heuristic, no optimality claim
)

// SLORungName returns the stable name of a Stats.SLORung value:
// "exact", "iterdp", or "greedy".
func SLORungName(r int) string {
	switch r {
	case rungExact:
		return "exact"
	case rungIterDP:
		return "iterdp"
	case rungGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("rung(%d)", r)
	}
}

// rungOf maps an algorithm to its ladder rung.
func rungOf(a Algorithm) int {
	switch a {
	case Greedy:
		return rungGreedy
	case IterDP:
		return rungIterDP
	default:
		return rungExact
	}
}

const (
	// sloQuantile is the latency tail the router plans against. A plan
	// budget is an SLO, so the prediction must be a high quantile of
	// the series, not its mean.
	sloQuantile = 0.99
	// sloMinSamples is how many live observations a series needs before
	// its quantile outranks the persisted baseline and static tables.
	sloMinSamples = 16
)

// sloState carries one budgeted call's routing decision from the route
// phase to the point where its outcome is known (recordSLO).
type sloState struct {
	budget    time.Duration
	predicted time.Duration
	degraded  bool
}

// routeBudget walks the degradation ladder below the topology route
// and returns the first rung predicted to finish inside the budget —
// or the bottom rung when nothing fits (greedy is the floor; there is
// no cheaper plan to give). The iterdp rung only exists when the graph
// is larger than one exact subproblem; below that, iterdp degenerates
// to the exact enumeration it would wrap.
func (p *Planner) routeBudget(prof shape.Profile, routed Algorithm, o *options) (final Algorithm, predicted time.Duration, degraded bool) {
	cs := o.clusterSize
	if cs <= 0 {
		cs = DefaultClusterSize
	}
	var rungs [3]Algorithm
	n := 0
	rungs[n] = routed
	n++
	if rungOf(routed) < rungIterDP && prof.Rels > cs {
		rungs[n] = IterDP
		n++
	}
	if rungOf(routed) < rungGreedy {
		rungs[n] = Greedy
		n++
	}
	for i := 0; i < n; i++ {
		predicted = p.predictPlanTime(prof.Class.String(), rungs[i], prof.Rels, cs)
		if predicted <= o.planBudget || i == n-1 {
			return rungs[i], predicted, i > 0
		}
	}
	return routed, predicted, false // unreachable: the loop returns on i == n-1
}

// predictPlanTime estimates the sloQuantile wall time of planning a
// rels-relation graph of the given shape with alg, consulting the live
// registry, then the baseline history, then the static tables.
//
// The live series includes cache hits by design: if a shape's traffic
// is fully cached its observed planning cost is the lookup, and routing
// the next cold call optimistically costs one mis-prediction that the
// registry then absorbs.
func (p *Planner) predictPlanTime(shapeClass string, alg Algorithm, rels, clusterSize int) time.Duration {
	k := obs.Key{Shape: shapeClass, Algorithm: alg.String(), N: obs.NBucket(rels)}
	if d, n, ok := p.planObs.Quantile(k, sloQuantile); ok && n >= sloMinSamples {
		return d
	}
	if h := p.histBase.Load(); h != nil {
		if d, ok := h.Quantile(k, sloQuantile); ok {
			return d
		}
	}
	return staticPlanCost(shapeClass, alg, rels, clusterSize)
}

// SetBaselineHistory installs a persisted planning-cost history as the
// budget router's fallback prediction source for series the live
// registry has not warmed up yet (see WithPlanBudget). The serving
// layer calls this with the history it loads at startup. The history
// is read concurrently from planning calls and must not be mutated
// after installation; nil removes the baseline.
func (p *Planner) SetBaselineHistory(h *obs.History) { p.histBase.Store(h) }

// recordSLO stamps the outcome of one budgeted call onto its stats and
// bumps the session counters. alg is the algorithm that actually
// produced the plan (after any greedy fallback), elapsed the call's
// wall time including cache lookup and routing.
func (p *Planner) recordSLO(st *Stats, s sloState, alg Algorithm, elapsed time.Duration) {
	if s.budget <= 0 {
		return
	}
	st.PlanBudget = s.budget
	st.PredictedCost = s.predicted
	st.SLORung = rungOf(alg)
	st.SLODegraded = s.degraded
	st.SLOMet = elapsed <= s.budget
	if st.SLOMet {
		p.sloMet.Add(1)
	} else {
		p.sloMissed.Add(1)
	}
	if s.degraded {
		p.sloDegraded.Add(1)
	}
}

// Static prediction tables, used only while both measured sources are
// cold. Enumeration effort is modeled as the paper's §4 csg-cmp-pair
// counts for the query's topology class times an amortized per-pair
// cost; the absolute constants are order-of-magnitude calibrations
// from this repository's benchmarks, which is enough to order the
// ladder rungs — the only decision the router makes with them.

// staticPairs approximates the number of csg-cmp-pairs a shape-matched
// exact enumeration of an n-relation graph emits (§4.1): cubic for
// chains and cycles, (n-1)·2^(n-2) for stars, ~3^n/2 for cliques, and
// an intermediate exponential for grids and unclassified topologies.
func staticPairs(shapeClass string, n int) float64 {
	f := float64(n)
	if f < 2 {
		return 1
	}
	switch shapeClass {
	case "chain":
		return (f*f*f - f) / 6
	case "cycle":
		return (f*f*f - f) / 3
	case "star":
		return (f - 1) * math.Exp2(f-2)
	case "clique":
		return (math.Pow(3, f) - math.Exp2(f+1) + 2) / 2
	default: // grid, mixed, unclassified: denser than a star, sparser than a clique
		return f * math.Exp2(f)
	}
}

// staticPlanCost turns the pair counts into a wall-time estimate for
// one ladder rung. Estimates are clamped at one hour: beyond that the
// ladder ordering is all that matters, and float exponentials for
// hundred-relation cliques would overflow time.Duration.
func staticPlanCost(shapeClass string, alg Algorithm, n, clusterSize int) time.Duration {
	const (
		baseNs       = 30e3  // fixed per-call overhead: freeze, classify, memo setup
		perPairNs    = 500.0 // amortized cost of one csg-cmp-pair (build + price)
		perGreedyNs  = 4.0   // one GOO scan step; greedy performs O(n³) of them
		perClusterNs = 2e3   // per-relation clustering overhead in the iterdp tier
	)
	f := float64(n)
	switch alg {
	case Greedy:
		return clampPredict(baseNs + f*f*f*perGreedyNs)
	case IterDP:
		if n <= clusterSize {
			return clampPredict(baseNs + staticPairs(shapeClass, n)*perPairNs)
		}
		// ~two compression rounds of ceil(n/cs) exact subproblems, each
		// at cluster scale on the original topology, plus clustering.
		subs := 2 * float64((n+clusterSize-1)/clusterSize)
		return clampPredict(baseNs + f*perClusterNs + subs*staticPairs(shapeClass, clusterSize)*perPairNs)
	default:
		return clampPredict(baseNs + staticPairs(shapeClass, n)*perPairNs)
	}
}

func clampPredict(ns float64) time.Duration {
	const maxPredictNs = float64(time.Hour)
	if !(ns < maxPredictNs) { // catches +Inf and NaN too
		return time.Hour
	}
	return time.Duration(ns)
}
