package repro

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/optree"
)

// QueryJSON is the on-disk query format shared by cmd/joinorder and
// cmd/querygen. A query is either a hypergraph (Relations + Edges) or an
// initial operator tree (Relations + Tree) for non-inner-join queries.
type QueryJSON struct {
	Relations []RelationJSON `json:"relations"`
	Edges     []EdgeJSON     `json:"edges,omitempty"`
	Tree      *TreeJSON      `json:"tree,omitempty"`
}

// RelationJSON describes one relation.
type RelationJSON struct {
	Name string  `json:"name"`
	Card float64 `json:"card"`
	Free []int   `json:"free,omitempty"` // dependent table references
}

// EdgeJSON describes one (possibly generalized) hyperedge.
type EdgeJSON struct {
	Left  []int   `json:"left"`
	Right []int   `json:"right"`
	Free  []int   `json:"free,omitempty"`
	Sel   float64 `json:"sel"`
	Op    string  `json:"op,omitempty"` // defaults to "join"
	Label string  `json:"label,omitempty"`
}

// TreeJSON describes one initial-operator-tree node.
type TreeJSON struct {
	Rel   *int      `json:"rel,omitempty"` // leaf
	Op    string    `json:"op,omitempty"`  // operator node
	Left  *TreeJSON `json:"left,omitempty"`
	Right *TreeJSON `json:"right,omitempty"`
	Pred  []int     `json:"pred,omitempty"` // tables the predicate references
	Sel   float64   `json:"sel,omitempty"`
	Label string    `json:"label,omitempty"`
}

// ParseQuery decodes a QueryJSON document.
func ParseQuery(data []byte) (*QueryJSON, error) {
	var q QueryJSON
	if err := json.Unmarshal(data, &q); err != nil {
		return nil, fmt.Errorf("repro: parsing query: %w", err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

// Validate checks the document's structural invariants: at least one
// relation, and exactly one of edges (hypergraph document) or a tree
// (operator-tree document). ParseQuery applies it after decoding;
// servers decoding documents through other paths call it directly.
func (q *QueryJSON) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("repro: query has no relations")
	}
	if q.Tree == nil && len(q.Edges) == 0 {
		return fmt.Errorf("repro: query needs edges or a tree")
	}
	if q.Tree != nil && len(q.Edges) > 0 {
		return fmt.Errorf("repro: query cannot have both edges and a tree")
	}
	return nil
}

// OptimizeJSON analyzes and optimizes a decoded query via the default
// Planner (see DefaultPlanner).
func OptimizeJSON(q *QueryJSON, opts ...Option) (*Result, error) {
	return DefaultPlanner().PlanJSON(context.Background(), q, opts...)
}

// PlanJSON analyzes and optimizes a decoded QueryJSON document under
// the planner's policy: a hypergraph document is (re)paired for
// connectivity and enumerated, a tree document goes through conflict
// analysis first. Cancellation, budgets, the plan cache, and the Greedy
// fallback all apply as in Plan.
func (p *Planner) PlanJSON(ctx context.Context, q *QueryJSON, opts ...Option) (*Result, error) {
	if q.Tree != nil {
		return p.planJSONTree(ctx, q, opts)
	}
	return p.planJSONGraph(ctx, q, opts)
}

// BuildQuery materializes a hypergraph document as a *Query, ready for
// Planner.Plan. It fails on tree documents (those carry conflict-
// analysis state that only PlanJSON can derive) and on malformed
// relations or edges. The connectivity repair is not applied here: it
// runs, once, on the query's first planning call — so the graph (and
// its Fingerprint) observed between BuildQuery and Plan is exactly the
// document's own. Servers use this to key request coalescing by the
// graph fingerprint before committing a worker to the enumeration.
func (q *QueryJSON) BuildQuery() (*Query, error) {
	if q.Tree != nil {
		return nil, fmt.Errorf("repro: tree documents cannot build a hypergraph query directly; use PlanJSON")
	}
	g := hypergraph.New()
	var err error
	catch(&err, func() {
		for i, r := range q.Relations {
			g.AddRelation(r.Name, r.Card)
			if len(r.Free) > 0 {
				g.SetFree(i, bitset.New(r.Free...))
			}
		}
		for _, e := range q.Edges {
			op := algebra.Join
			if e.Op != "" {
				var perr error
				op, perr = algebra.ParseOp(e.Op)
				if perr != nil {
					panic(perr)
				}
			}
			g.AddEdge(hypergraph.Edge{
				U: bitset.New(e.Left...), V: bitset.New(e.Right...),
				W: bitset.New(e.Free...), Sel: e.Sel, Op: op, Label: e.Label,
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return &Query{g: g}, nil
}

func (p *Planner) planJSONGraph(ctx context.Context, q *QueryJSON, opts []Option) (*Result, error) {
	qq, err := q.BuildQuery()
	if err != nil {
		return nil, p.fail(err)
	}
	return p.Plan(ctx, qq, opts...)
}

func (p *Planner) planJSONTree(ctx context.Context, q *QueryJSON, opts []Option) (*Result, error) {
	o := p.merged(opts)
	o.ctx = ctx
	rels := make([]optree.RelInfo, len(q.Relations))
	for i, r := range q.Relations {
		rels[i] = optree.RelInfo{Name: r.Name, Card: r.Card, Free: bitset.New(r.Free...)}
	}
	root, err := buildTreeJSON(q.Tree)
	if err != nil {
		return nil, p.fail(err)
	}
	tr, err := optree.Analyze(root, rels, o.rule)
	if err != nil {
		return nil, p.fail(err)
	}
	if o.genAndTest {
		g := tr.Hypergraph(optree.SESEdges)
		return p.planGraph(ctx, g, o, tr.Filter(g))
	}
	return p.planGraph(ctx, tr.Hypergraph(optree.TESEdges), o, nil)
}

func buildTreeJSON(n *TreeJSON) (*optree.Node, error) {
	if n == nil {
		return nil, fmt.Errorf("repro: nil tree node")
	}
	if n.Rel != nil {
		return optree.NewLeaf(*n.Rel), nil
	}
	op, err := algebra.ParseOp(n.Op)
	if err != nil {
		return nil, err
	}
	l, err := buildTreeJSON(n.Left)
	if err != nil {
		return nil, err
	}
	r, err := buildTreeJSON(n.Right)
	if err != nil {
		return nil, err
	}
	return optree.NewOp(op, l, r, optree.Predicate{
		Tables: bitset.New(n.Pred...),
		Sel:    n.Sel,
		Label:  n.Label,
	}), nil
}

func catch(err *error, f func()) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				*err = e
				return
			}
			*err = fmt.Errorf("repro: %v", r)
		}
	}()
	f()
}
