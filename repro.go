package repro

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/dpccp"
	"repro/internal/dpsize"
	"repro/internal/dpsub"
	"repro/internal/goo"
	"repro/internal/hypergraph"
	"repro/internal/iterdp"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/optree"
	"repro/internal/plan"
	"repro/internal/topdown"
)

// ErrBudgetExhausted is the sentinel wrapped by planning errors when an
// exact enumeration stopped at its Budget and no Greedy fallback was
// available (the fallback was disabled, the algorithm already was
// Greedy, or the greedy pass itself failed). Test with errors.Is.
var ErrBudgetExhausted = dp.ErrBudgetExhausted

// Re-exported building blocks. The internal packages hold the
// implementations; these aliases make the public API self-contained.
type (
	// PlanNode is a node of an optimized operator tree.
	PlanNode = plan.Node
	// Stats reports enumeration effort (csg-cmp-pairs, costed plans,
	// rejected candidates, DP table size).
	Stats = dp.Stats
	// CostModel prices join nodes; see Cout, NestedLoop, Hash.
	CostModel = cost.Model
	// Op is a binary algebra operator.
	Op = algebra.Op
	// Graph is a query hypergraph.
	Graph = hypergraph.Graph
	// Trace records DPhyp traversal steps (Fig. 3 style).
	Trace = core.Trace
	// PlanTrace records the phases of one planning call (routing, cache
	// lookup, iterdp compression rounds, enumeration, materialization)
	// with per-phase wall time and work counters. Attach one with
	// WithExplain; the completed trace is returned in Stats.Trace.
	PlanTrace = obs.Trace
	// PlanSpan is one recorded phase of a PlanTrace.
	PlanSpan = obs.Span
	// PlanPhase labels what a PlanSpan measured.
	PlanPhase = obs.Phase
)

// Operator constants for tree queries and plan inspection.
const (
	OpJoin      = algebra.Join
	OpLeftOuter = algebra.LeftOuter
	OpFullOuter = algebra.FullOuter
	OpAntiJoin  = algebra.AntiJoin
	OpSemiJoin  = algebra.SemiJoin
	OpNestJoin  = algebra.NestJoin
)

// Cost models.
var (
	// Cout sums intermediate result cardinalities (default).
	Cout CostModel = cost.Cout{}
	// NestedLoop charges the cross product of the inputs per join.
	NestedLoop CostModel = cost.NestedLoop{}
	// Hash models a main-memory hash join.
	Hash CostModel = cost.Hash{}
	// Cmm prices joins with per-operator main-memory weights (an
	// adaptation of the C_mm model).
	Cmm CostModel = cost.Cmm{}
	// Physical additionally chooses hash join, sort-merge join, or
	// index nested-loop per node; the choice is recorded in
	// PlanNode.Phys.
	Physical CostModel = cost.Physical{}
)

// ParseCostModel maps a command-line name to a cost model. Recognized
// names: cout, cmm, nlj, hash, physical.
func ParseCostModel(s string) (CostModel, error) {
	switch s {
	case "cout":
		return Cout, nil
	case "cmm":
		return Cmm, nil
	case "nlj":
		return NestedLoop, nil
	case "hash":
		return Hash, nil
	case "physical":
		return Physical, nil
	}
	return nil, fmt.Errorf("repro: unknown cost model %q (have cout, cmm, nlj, hash, physical)", s)
}

// PhysicalOp identifies the physical join implementation the Physical
// cost model chose for a plan node (see PlanNode.Phys).
type PhysicalOp = algebra.PhysOp

// The physical join implementations.
const (
	PhysNone      = algebra.PhysNone
	PhysHashJoin  = algebra.PhysHashJoin
	PhysSortMerge = algebra.PhysSortMerge
	PhysIndexNLJ  = algebra.PhysIndexNLJ
)

// Algorithm selects the enumeration strategy.
type Algorithm int

// The implemented join enumeration algorithms.
const (
	DPhyp Algorithm = iota
	DPsize
	DPsub
	DPccp
	TopDown
	// Greedy is GOO (greedy operator ordering): a heuristic for queries
	// beyond the reach of exact dynamic programming. Plans are valid but
	// not necessarily optimal.
	Greedy
	// IterDP is the large-query tier: iterative dynamic programming by
	// graph simplification. Adjacent relations are greedily clustered
	// into subproblems of at most WithClusterSize relations, each
	// subproblem is solved EXACTLY by the enumeration engine, clusters
	// collapse to compound vertices, and the compression repeats until
	// one final exact enumeration covers the graph. Optimal within each
	// subproblem, heuristic across cluster boundaries; this is how
	// 100–1000-relation queries plan within an interactive budget.
	// Non-inner operators and dependent relations degrade to Greedy.
	IterDP
	// SolverAuto routes each query to a concrete algorithm based on its
	// topology (chain, cycle, star, clique, grid, mixed — see
	// internal/shape) and the paper's §4 crossover data. The routed
	// algorithm and the shape class are recorded in
	// Stats.RoutedAlgorithm and Stats.Shape, and Result.Algorithm
	// reports what actually ran. Queries beyond the exact cutoffs
	// degrade directly to Greedy.
	SolverAuto
)

var algorithmNames = map[Algorithm]string{
	DPhyp: "dphyp", DPsize: "dpsize", DPsub: "dpsub", DPccp: "dpccp",
	TopDown: "topdown", Greedy: "greedy", IterDP: "iterdp", SolverAuto: "auto",
}

func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm is the inverse of Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, n := range algorithmNames {
		if n == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("repro: unknown algorithm %q (have dphyp, dpsize, dpsub, dpccp, topdown, greedy, iterdp, auto)", s)
}

// Budget bounds the effort of one exact enumeration. The zero value
// imposes no bounds. When a limit trips, a Planner with the default
// policy falls back to Greedy (GOO) and records the downgrade in Stats;
// without the fallback the planning call fails with an error wrapping
// ErrBudgetExhausted.
type Budget struct {
	// MaxCsgCmpPairs caps the number of csg-cmp-pairs emitted — the
	// paper's §2.2 yardstick for enumeration effort. 0 = unlimited.
	MaxCsgCmpPairs int
	// MaxCostedPlans caps the number of candidate plans priced.
	// 0 = unlimited.
	MaxCostedPlans int
}

// Option configures a Planner or a single planning call.
type Option func(*options)

type options struct {
	alg        Algorithm
	model      CostModel
	rule       optree.ConflictRule
	genAndTest bool
	noSimplify bool
	trace      *Trace
	explain    *obs.Trace
	onEmit     func(s1, s2 bitset.Set)

	// Session knobs (see Planner).
	ctx         context.Context
	budget      Budget
	cacheSize   int
	noFallback  bool
	pool        *memo.Pool
	parallelism int           // 0 = GOMAXPROCS, 1 = serial
	clusterSize int           // IterDP subproblem budget; 0 = DefaultClusterSize
	planBudget  time.Duration // planning-time SLO for budget routing; 0 = none
}

func defaultOptions() options {
	return options{
		alg:       DPhyp,
		model:     cost.Default(),
		rule:      optree.Conservative,
		cacheSize: DefaultPlanCacheSize,
	}
}

// WithAlgorithm selects the enumeration algorithm (default DPhyp).
func WithAlgorithm(a Algorithm) Option { return func(o *options) { o.alg = a } }

// WithCostModel selects the cost model (default Cout).
func WithCostModel(m CostModel) Option { return func(o *options) { o.model = m } }

// WithPublishedConflictRule uses the literal §5.5 LC/RC gates instead of
// the conservative default; see internal/optree for the trade-off.
func WithPublishedConflictRule() Option {
	return func(o *options) { o.rule = optree.Published }
}

// WithGenerateAndTest switches tree queries to the §5.8 generate-and-test
// paradigm: hyperedges from SESs plus a late TES filter in EmitCsgCmp.
// Slower by design; exposed for the Fig. 8a reproduction.
func WithGenerateAndTest() Option { return func(o *options) { o.genAndTest = true } }

// WithoutSimplification skips the §5.2 outer-join simplification pass on
// tree queries. The conflict rules assume simplified inputs, so only use
// this when the tree is known to be simplified already.
func WithoutSimplification() Option { return func(o *options) { o.noSimplify = true } }

// WithTrace records the enumeration steps into t.
func WithTrace(t *Trace) Option { return func(o *options) { o.trace = t } }

// WithExplain records a phase/span trace of the planning call into t
// (route, cache lookup, iterdp rounds, enumeration, materialize — with
// per-phase wall time, pairs emitted, memo occupancy, and worker
// counts). Unlike WithTrace it observes only phase boundaries, so it
// neither forces the serial engine nor bypasses the plan cache: a
// traced call served from the cache returns a trace of just the route
// and cache-lookup phases. The completed trace is available as
// Stats.Trace.
func WithExplain(t *PlanTrace) Option { return func(o *options) { o.explain = t } }

// WithBudget bounds exact enumeration effort (see Budget). On a Planner
// it applies to every plan; on a single call it overrides the planner's
// default for that call.
func WithBudget(b Budget) Option { return func(o *options) { o.budget = b } }

// WithPlanCacheSize sets the capacity (in entries) of a Planner's
// fingerprint-keyed plan cache; n <= 0 disables caching. The default is
// DefaultPlanCacheSize. Only meaningful when passed to NewPlanner.
func WithPlanCacheSize(n int) Option { return func(o *options) { o.cacheSize = n } }

// WithoutGreedyFallback makes budget exhaustion a hard error (wrapping
// ErrBudgetExhausted) instead of degrading to a Greedy plan.
func WithoutGreedyFallback() Option { return func(o *options) { o.noFallback = true } }

// WithParallelism bounds the workers one enumeration may use. The
// default (0) is runtime.GOMAXPROCS; 1 pins every run to the serial
// engine and its pooling behavior exactly as before. Parallelism never
// changes the plan: worker results merge under an order-independent
// tie-break, so plans are byte-identical across worker counts (and to
// serial), which is also why the plan cache ignores this knob. Small
// queries (fewer than ParallelMinRels relations), traced or observed
// runs, and generate-and-test filters always plan serially — fork/join
// overhead would dominate or ordering guarantees would be lost.
func WithParallelism(n int) Option { return func(o *options) { o.parallelism = n } }

// DefaultClusterSize is the IterDP subproblem budget unless overridden
// with WithClusterSize: 12-relation subgraphs exact-solve in well under
// a millisecond on every topology.
const DefaultClusterSize = iterdp.DefaultClusterSize

// WithClusterSize sets the largest relation count the IterDP tier hands
// to one exact sub-enumeration (default DefaultClusterSize, capped at
// iterdp.MaxClusterSize). Larger clusters buy plan quality with
// exponentially more enumeration time per subproblem.
func WithClusterSize(n int) Option { return func(o *options) { o.clusterSize = n } }

// ParallelMinRels is the size crossover below which enumerations stay
// serial regardless of WithParallelism: under ~10 relations a full
// exact enumeration costs tens of microseconds, where goroutine
// fork/join and the level barriers would be pure regression.
const ParallelMinRels = 10

// workers resolves the effective worker count for one enumeration over
// g. Observation hooks need the serial emission order; filters carry
// per-analysis state the worker builders must not share.
func (o *options) workers(g *Graph, filter dp.Filter) int {
	w := o.parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 64 {
		w = 64
	}
	if w > 1 && (filter != nil || o.trace != nil || o.onEmit != nil || g.NumRels() < ParallelMinRels) {
		return 1
	}
	return w
}

// Result is the outcome of an optimization.
type Result struct {
	// Plan is the optimal operator tree.
	Plan *PlanNode
	// Stats reports the enumeration effort.
	Stats Stats
	// Graph is the hypergraph the enumeration ran on (for tree queries,
	// the TES- or SES-derived graph).
	Graph *Graph
	// Algorithm is the algorithm that produced Plan. It differs from the
	// requested one when the Planner downgraded to Greedy after a budget
	// trip (Stats.FallbackGreedy is then set).
	Algorithm Algorithm
}

// Cost returns the plan's total cost under the optimizing model.
func (r *Result) Cost() float64 { return r.Plan.Cost }

// Cardinality returns the estimated result size.
func (r *Result) Cardinality() float64 { return r.Plan.Card }

// runSolver dispatches a hypergraph to the selected algorithm. It
// returns the enumeration statistics even on error so that the Planner
// can account for the work an aborted exact pass performed before its
// Greedy fallback.
func runSolver(g *Graph, o options, filter dp.Filter) (*PlanNode, Stats, error) {
	// Fault injection: one visit per solver dispatch. An injected error
	// fails the enumeration before it starts (wrap ErrBudgetExhausted to
	// exercise the greedy fallback); a delay models a slow solver.
	if chaos.Armed() {
		if err := chaos.Inject(chaos.SiteEnumerate); err != nil {
			return nil, Stats{}, err
		}
	}
	limits := dp.Limits{
		Ctx:            o.ctx,
		MaxCsgCmpPairs: o.budget.MaxCsgCmpPairs,
		MaxCostedPlans: o.budget.MaxCostedPlans,
	}
	par := o.workers(g, filter)
	switch o.alg {
	case DPhyp:
		return core.Solve(g, core.Options{Model: o.model, Filter: filter, Trace: o.trace, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case DPsize:
		return dpsize.Solve(g, dpsize.Options{Model: o.model, Filter: filter, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case DPsub:
		return dpsub.Solve(g, dpsub.Options{Model: o.model, Filter: filter, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case DPccp:
		return dpccp.Solve(g, dpccp.Options{Model: o.model, Filter: filter, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case TopDown:
		return topdown.Solve(g, topdown.Options{Model: o.model, Filter: filter, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case Greedy:
		return goo.Solve(g, goo.Options{Model: o.model, Filter: filter, Explain: o.explain, OnEmit: o.onEmit, Limits: limits, Pool: o.pool, Parallelism: par})
	case IterDP:
		return runIterDP(g, o, limits)
	case SolverAuto:
		// The Planner resolves SolverAuto to a concrete algorithm before
		// dispatching; reaching this point is a programming error.
		return nil, Stats{}, fmt.Errorf("repro: SolverAuto must be resolved by the planner before dispatch")
	default:
		return nil, Stats{}, fmt.Errorf("repro: unknown algorithm %v", o.alg)
	}
}

// OptimizeGraph runs the selected algorithm directly on a hypergraph
// through the default Planner (see DefaultPlanner). Most callers use
// Query.Optimize or TreeQuery.Optimize instead; this entry point serves
// tools and benchmarks that build graphs through the internal workload
// generators.
func OptimizeGraph(g *Graph, opts ...Option) (*Result, error) {
	return DefaultPlanner().PlanGraph(context.Background(), g, opts...)
}
